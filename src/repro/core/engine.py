"""The visualization compute engine.

The remote system's job each frame (section 5.2): take the current
environment state, locate every rake's seed points in the grid (once per
interaction, not per integration step), run the tracer tools in grid
coordinates with the selected execution backend, and emit physical-space
float32 path arrays — 12 bytes per point — ready for the network.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.environment import Environment
from repro.diskio.loader import TimestepLoader
from repro.flow.dataset import UnsteadyDataset
from repro.grid.search import GridLocator
from repro.obs import get_registry
from repro.tracers.integrate import IntegratorWorkspace, integrate_steady
from repro.tracers.particlepath import compute_particle_paths
from repro.tracers.rake import Rake
from repro.tracers.result import TracerResult
from repro.tracers.streakline import StreaklineTracer

__all__ = ["ToolSettings", "ComputeEngine"]


@dataclass
class ToolSettings:
    """Per-environment tracer parameters (user adjustable)."""

    streamline_steps: int = 200
    streamline_dt: float = 0.05
    particle_path_steps: int = 100
    streakline_length: int = 64
    max_window: int | None = None  # particle-path timestep window (sec 5.2)

    def scaled(self, quality: float) -> "ToolSettings":
        """Settings scaled by a quality factor in (0, 1] (see governor)."""
        if not (0.0 < quality <= 1.0):
            raise ValueError("quality must be in (0, 1]")
        return ToolSettings(
            streamline_steps=max(2, int(self.streamline_steps * quality)),
            streamline_dt=self.streamline_dt,
            particle_path_steps=max(2, int(self.particle_path_steps * quality)),
            streakline_length=self.streakline_length,
            max_window=self.max_window,
        )


class ComputeEngine:
    """Computes every rake's tool for a given timestep.

    Holds the per-rake persistent state (streakline populations, warm-start
    grid coordinates for rake seeds) that must survive across frames.
    """

    def __init__(
        self,
        dataset: UnsteadyDataset,
        settings: ToolSettings | None = None,
        *,
        backend: str = "vector",
        workers: int = 4,
        loader: TimestepLoader | None = None,
        fused: bool = True,
        registry=None,
    ) -> None:
        self.dataset = dataset
        self.settings = settings or ToolSettings()
        self.backend = backend
        self.workers = workers
        self.loader = loader
        # Megabatch mode: one integration call per frame across all rakes
        # of a kind (the paper's "vectorize across streamlines", extended
        # across rakes).  ``False`` is the per-rake baseline the fused
        # benchmark compares against.
        self.fused = bool(fused)
        # Optional MetricsRegistry; the frame pipeline wires its own in.
        # ``None`` falls back to the process-wide registry at record time.
        self.registry = registry
        # The frame pipeline flips this off when it takes over prefetch
        # prediction (its clock-lookahead guess beats blind t+direction).
        self.auto_prefetch = True
        self._locator = GridLocator(dataset.grid)
        self._streaks: dict[int, StreaklineTracer] = {}
        self._streak_last: dict[int, int] = {}
        self._seed_cache: dict[int, tuple[bytes, np.ndarray]] = {}
        self.points_computed = 0
        # Zero-allocation scratch for the fused vector kernels.  Owned by
        # whichever single thread calls the compute methods (the producer
        # thread under the frame pipeline) — not thread-safe.
        self.workspace = IntegratorWorkspace()
        # Last-frame fused metrics (also exported as engine.* gauges).
        self.fused_batch_size = 0
        self.points_per_second = 0.0

    # -- seeds --------------------------------------------------------------

    def rake_seeds_grid(self, rake: Rake) -> np.ndarray:
        """Rake seed positions converted to grid coordinates.

        Cached on the rake's geometry so an unmoved rake costs nothing; a
        moved rake warm-starts the Newton search from its previous
        location (the paper's 'search ... once per interaction' economy).
        """
        seeds_phys = rake.seeds()
        key = seeds_phys.tobytes()
        rid = rake.rake_id if rake.rake_id is not None else id(rake)
        cached = self._seed_cache.get(rid)
        if cached is not None and cached[0] == key:
            return cached[1]
        guess = None
        if cached is not None and cached[1].shape == seeds_phys.shape:
            guess = cached[1]
        coords, found = self._locator.locate(seeds_phys, guess=guess)
        coords = coords[found]
        self._seed_cache[rid] = (key, coords)
        return coords

    # -- per-frame compute ------------------------------------------------------

    def cache_stats(self) -> dict | None:
        """Per-tier timestep-cache counters, or ``None`` when unmanaged.

        Surfaced by ``wt.pipeline_stats`` (the ``"cache"`` block) so an
        operator can read tier hit rates without a metrics scrape.
        """
        if self.loader is None:
            return None
        out = self.loader.cache.stats_snapshot()
        out["loader"] = {
            "hits": self.loader.hits,
            "misses": self.loader.misses,
            "prefetch_issued": self.loader.prefetch_issued,
            "stall_seconds": self.loader.stall_seconds,
            "modeled_read_seconds": self.loader.modeled_read_seconds,
        }
        return out

    def _grid_velocity(self, timestep: int, direction: int = 1) -> np.ndarray:
        if self.loader is not None:
            return self.loader.load(
                timestep, direction, auto_prefetch=self.auto_prefetch
            )
        return self.dataset.grid_velocity(timestep)

    def compute_rake(
        self, rake: Rake, timestep: int, *, direction: int = 1,
        settings: ToolSettings | None = None,
    ) -> TracerResult:
        """Run one rake's tool at ``timestep``; returns its paths."""
        s = settings or self.settings
        seeds = self.rake_seeds_grid(rake)
        rid = rake.rake_id if rake.rake_id is not None else id(rake)
        if rake.kind == "streamline":
            gv = self._grid_velocity(timestep, direction)
            paths, lengths = integrate_steady(
                gv, seeds, s.streamline_steps, s.streamline_dt,
                backend=self.backend, workers=self.workers,
            )
            result = TracerResult(paths, lengths, self.dataset.grid)
        elif rake.kind == "particle_path":
            result = compute_particle_paths(
                self.dataset, timestep, seeds,
                n_steps=s.particle_path_steps, max_window=s.max_window,
            )
        elif rake.kind == "streakline":
            tracer = self._streaks.get(rid)
            if tracer is None or tracer.max_length != s.streakline_length:
                tracer = StreaklineTracer(max_length=s.streakline_length)
                self._streaks[rid] = tracer
            if self._streak_last.get(rid) != timestep:
                # Ensure the field is resident (charges the loader).
                self._grid_velocity(timestep, direction)
                tracer.advance(self.dataset, timestep, seeds)
                self._streak_last[rid] = timestep
            result = tracer.result(self.dataset.grid)
        else:  # pragma: no cover - Rake validates kinds
            raise ValueError(f"unknown tool kind {rake.kind!r}")
        self.points_computed += result.n_points
        return result

    def compute_environment(
        self, env: Environment, timestep: int, *, quality: float = 1.0
    ) -> dict[int, TracerResult]:
        """Compute every rake in the environment.  Returns id -> result."""
        return self.compute_rakes(
            env.rakes, timestep, direction=env.clock.direction, quality=quality
        )

    def compute_rakes(
        self,
        rakes: dict[int, Rake],
        timestep: int,
        *,
        direction: int = 1,
        quality: float = 1.0,
        settings: ToolSettings | None = None,
    ) -> dict[int, TracerResult]:
        """Compute a rake set (usually an environment snapshot).

        The frame pipeline's producer thread calls this with a *copied*
        rake dict taken under the environment lock, so the service thread
        can keep mutating the live environment mid-compute.  Per-rake
        persistent state (streakline populations, seed warm starts) for
        rakes absent from ``rakes`` is garbage-collected here — rake ids
        are never reused, so a later snapshot can't resurrect stale state.
        """
        base = settings or self.settings
        effective = base if quality >= 1.0 else base.scaled(quality)
        if self.fused and rakes:
            out = self._compute_rakes_fused(
                rakes, timestep, direction=direction, settings=effective
            )
        else:
            out = {}
            for rake_id, rake in rakes.items():
                out[rake_id] = self.compute_rake(
                    rake, timestep, direction=direction, settings=effective
                )
        # Garbage-collect state for rakes that no longer exist.
        live = set(rakes)
        for rid in set(self._streaks) - live:
            del self._streaks[rid]
            self._streak_last.pop(rid, None)
        for rid in set(self._seed_cache) - live:
            del self._seed_cache[rid]
        return out

    def _compute_rakes_fused(
        self,
        rakes: dict[int, Rake],
        timestep: int,
        *,
        direction: int,
        settings: ToolSettings,
    ) -> dict[int, TracerResult]:
        """One megabatch integration per rake kind, sliced back by offset.

        All streamline rakes' seeds concatenate into one
        :func:`integrate_steady` call (and likewise all particle-path
        rakes into one :func:`compute_particle_paths` call), so the
        kernel-launch overhead, the per-step trilinear gathers, and — on
        the process backends — the field transport are paid once per
        frame instead of once per rake, and active-particle compaction
        amortizes over the whole environment.  Streaklines stay per-rake:
        their population state is inherently per-tracer.

        Slicing is exact: every integration backend computes each
        particle independently (elementwise kernels, per-particle scalar
        loops), so the union batch is bit-identical to per-rake calls.
        The sliced ``grid_paths`` are views into the engine workspace's
        rotating buffer pool — valid while the frame pipeline encodes
        them (which copies), overwritten a few frames later.
        """
        s = settings
        out: dict[int, TracerResult] = {}
        stream_ids: list[int] = []
        stream_seeds: list[np.ndarray] = []
        ppath_ids: list[int] = []
        ppath_seeds: list[np.ndarray] = []
        for rid, rake in rakes.items():
            if rake.kind == "streamline":
                stream_ids.append(rid)
                stream_seeds.append(self.rake_seeds_grid(rake))
            elif rake.kind == "particle_path":
                ppath_ids.append(rid)
                ppath_seeds.append(self.rake_seeds_grid(rake))
            else:
                out[rid] = self.compute_rake(
                    rake, timestep, direction=direction, settings=s
                )
        batch = 0
        points = 0
        start = time.perf_counter()
        if stream_ids:
            gv = self._grid_velocity(timestep, direction)
            cat = (
                np.concatenate(stream_seeds, axis=0)
                if len(stream_seeds) > 1
                else stream_seeds[0]
            )
            batch += cat.shape[0]
            paths, lengths = integrate_steady(
                gv, cat, s.streamline_steps, s.streamline_dt,
                backend=self.backend, workers=self.workers,
                workspace=self.workspace if self.backend == "vector" else None,
            )
            offset = 0
            for rid, seeds in zip(stream_ids, stream_seeds):
                n = seeds.shape[0]
                result = TracerResult(
                    paths[offset : offset + n],
                    lengths[offset : offset + n],
                    self.dataset.grid,
                )
                offset += n
                out[rid] = result
                points += result.n_points
        if ppath_ids:
            cat = (
                np.concatenate(ppath_seeds, axis=0)
                if len(ppath_seeds) > 1
                else ppath_seeds[0]
            )
            batch += cat.shape[0]
            merged = compute_particle_paths(
                self.dataset, timestep, cat,
                n_steps=s.particle_path_steps, max_window=s.max_window,
                workspace=self.workspace,
            )
            offset = 0
            for rid, seeds in zip(ppath_ids, ppath_seeds):
                n = seeds.shape[0]
                result = TracerResult(
                    merged.grid_paths[offset : offset + n],
                    merged.lengths[offset : offset + n],
                    self.dataset.grid,
                )
                offset += n
                out[rid] = result
                points += result.n_points
        elapsed = time.perf_counter() - start
        self.points_computed += points
        self.fused_batch_size = batch
        self.points_per_second = points / elapsed if elapsed > 0 else 0.0
        registry = self.registry if self.registry is not None else get_registry()
        registry.gauge("engine.fused_batch_size").set(float(batch))
        registry.gauge("engine.points_per_second").set(self.points_per_second)
        registry.counter("engine.fused_frames").inc()
        registry.counter("engine.points_computed").inc(points)
        return out

    def reset_rake_state(self, rake_id: int) -> None:
        """Drop per-rake persistent state (e.g. on rake removal)."""
        self._streaks.pop(rake_id, None)
        self._streak_last.pop(rake_id, None)
        self._seed_cache.pop(rake_id, None)
