"""The visualization compute engine.

The remote system's job each frame (section 5.2): take the current
environment state, locate every rake's seed points in the grid (once per
interaction, not per integration step), run the tracer tools in grid
coordinates with the selected execution backend, and emit physical-space
float32 path arrays — 12 bytes per point — ready for the network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.environment import Environment
from repro.diskio.loader import TimestepLoader
from repro.flow.dataset import UnsteadyDataset
from repro.grid.search import GridLocator
from repro.tracers.integrate import integrate_steady
from repro.tracers.particlepath import compute_particle_paths
from repro.tracers.rake import Rake
from repro.tracers.result import TracerResult
from repro.tracers.streakline import StreaklineTracer

__all__ = ["ToolSettings", "ComputeEngine"]


@dataclass
class ToolSettings:
    """Per-environment tracer parameters (user adjustable)."""

    streamline_steps: int = 200
    streamline_dt: float = 0.05
    particle_path_steps: int = 100
    streakline_length: int = 64
    max_window: int | None = None  # particle-path timestep window (sec 5.2)

    def scaled(self, quality: float) -> "ToolSettings":
        """Settings scaled by a quality factor in (0, 1] (see governor)."""
        if not (0.0 < quality <= 1.0):
            raise ValueError("quality must be in (0, 1]")
        return ToolSettings(
            streamline_steps=max(2, int(self.streamline_steps * quality)),
            streamline_dt=self.streamline_dt,
            particle_path_steps=max(2, int(self.particle_path_steps * quality)),
            streakline_length=self.streakline_length,
            max_window=self.max_window,
        )


class ComputeEngine:
    """Computes every rake's tool for a given timestep.

    Holds the per-rake persistent state (streakline populations, warm-start
    grid coordinates for rake seeds) that must survive across frames.
    """

    def __init__(
        self,
        dataset: UnsteadyDataset,
        settings: ToolSettings | None = None,
        *,
        backend: str = "vector",
        workers: int = 4,
        loader: TimestepLoader | None = None,
    ) -> None:
        self.dataset = dataset
        self.settings = settings or ToolSettings()
        self.backend = backend
        self.workers = workers
        self.loader = loader
        # The frame pipeline flips this off when it takes over prefetch
        # prediction (its clock-lookahead guess beats blind t+direction).
        self.auto_prefetch = True
        self._locator = GridLocator(dataset.grid)
        self._streaks: dict[int, StreaklineTracer] = {}
        self._streak_last: dict[int, int] = {}
        self._seed_cache: dict[int, tuple[bytes, np.ndarray]] = {}
        self.points_computed = 0

    # -- seeds --------------------------------------------------------------

    def rake_seeds_grid(self, rake: Rake) -> np.ndarray:
        """Rake seed positions converted to grid coordinates.

        Cached on the rake's geometry so an unmoved rake costs nothing; a
        moved rake warm-starts the Newton search from its previous
        location (the paper's 'search ... once per interaction' economy).
        """
        seeds_phys = rake.seeds()
        key = seeds_phys.tobytes()
        rid = rake.rake_id if rake.rake_id is not None else id(rake)
        cached = self._seed_cache.get(rid)
        if cached is not None and cached[0] == key:
            return cached[1]
        guess = None
        if cached is not None and cached[1].shape == seeds_phys.shape:
            guess = cached[1]
        coords, found = self._locator.locate(seeds_phys, guess=guess)
        coords = coords[found]
        self._seed_cache[rid] = (key, coords)
        return coords

    # -- per-frame compute ------------------------------------------------------

    def _grid_velocity(self, timestep: int, direction: int = 1) -> np.ndarray:
        if self.loader is not None:
            return self.loader.load(
                timestep, direction, auto_prefetch=self.auto_prefetch
            )
        return self.dataset.grid_velocity(timestep)

    def compute_rake(
        self, rake: Rake, timestep: int, *, direction: int = 1,
        settings: ToolSettings | None = None,
    ) -> TracerResult:
        """Run one rake's tool at ``timestep``; returns its paths."""
        s = settings or self.settings
        seeds = self.rake_seeds_grid(rake)
        rid = rake.rake_id if rake.rake_id is not None else id(rake)
        if rake.kind == "streamline":
            gv = self._grid_velocity(timestep, direction)
            paths, lengths = integrate_steady(
                gv, seeds, s.streamline_steps, s.streamline_dt,
                backend=self.backend, workers=self.workers,
            )
            result = TracerResult(paths, lengths, self.dataset.grid)
        elif rake.kind == "particle_path":
            result = compute_particle_paths(
                self.dataset, timestep, seeds,
                n_steps=s.particle_path_steps, max_window=s.max_window,
            )
        elif rake.kind == "streakline":
            tracer = self._streaks.get(rid)
            if tracer is None or tracer.max_length != s.streakline_length:
                tracer = StreaklineTracer(max_length=s.streakline_length)
                self._streaks[rid] = tracer
            if self._streak_last.get(rid) != timestep:
                # Ensure the field is resident (charges the loader).
                self._grid_velocity(timestep, direction)
                tracer.advance(self.dataset, timestep, seeds)
                self._streak_last[rid] = timestep
            result = tracer.result(self.dataset.grid)
        else:  # pragma: no cover - Rake validates kinds
            raise ValueError(f"unknown tool kind {rake.kind!r}")
        self.points_computed += result.n_points
        return result

    def compute_environment(
        self, env: Environment, timestep: int, *, quality: float = 1.0
    ) -> dict[int, TracerResult]:
        """Compute every rake in the environment.  Returns id -> result."""
        return self.compute_rakes(
            env.rakes, timestep, direction=env.clock.direction, quality=quality
        )

    def compute_rakes(
        self,
        rakes: dict[int, Rake],
        timestep: int,
        *,
        direction: int = 1,
        quality: float = 1.0,
        settings: ToolSettings | None = None,
    ) -> dict[int, TracerResult]:
        """Compute a rake set (usually an environment snapshot).

        The frame pipeline's producer thread calls this with a *copied*
        rake dict taken under the environment lock, so the service thread
        can keep mutating the live environment mid-compute.  Per-rake
        persistent state (streakline populations, seed warm starts) for
        rakes absent from ``rakes`` is garbage-collected here — rake ids
        are never reused, so a later snapshot can't resurrect stale state.
        """
        base = settings or self.settings
        effective = base if quality >= 1.0 else base.scaled(quality)
        out: dict[int, TracerResult] = {}
        for rake_id, rake in rakes.items():
            out[rake_id] = self.compute_rake(
                rake, timestep, direction=direction, settings=effective
            )
        # Garbage-collect state for rakes that no longer exist.
        live = set(rakes)
        for rid in set(self._streaks) - live:
            del self._streaks[rid]
            self._streak_last.pop(rid, None)
        for rid in set(self._seed_cache) - live:
            del self._seed_cache[rid]
        return out

    def reset_rake_state(self, rake_id: int) -> None:
        """Drop per-rake persistent state (e.g. on rake removal)."""
        self._streaks.pop(rake_id, None)
        self._streak_last.pop(rake_id, None)
        self._seed_cache.pop(rake_id, None)
