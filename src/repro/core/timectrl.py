"""Interactive time control over the unsteady dataset.

Section 2: "The time evolution of the flow can be sped up, slowed down,
run backwards, or stopped completely for detailed examination."  Time is
anchored to a wall clock so every client sampling the shared environment
sees the same flow time; scrubbing, pausing, or changing speed re-anchors.
"""

from __future__ import annotations

__all__ = ["TimeControl"]


class TimeControl:
    """Maps wall-clock time to a (fractional) dataset timestep position.

    Parameters
    ----------
    n_timesteps
        Length of the dataset's timestep sequence.
    speed
        Playback rate in timesteps per wall-clock second; negative runs
        the flow backwards.
    wrap
        ``True`` loops playback (position mod n); ``False`` clamps at the
        sequence ends.
    """

    def __init__(self, n_timesteps: int, speed: float = 10.0, wrap: bool = True) -> None:
        if n_timesteps < 1:
            raise ValueError("need at least one timestep")
        self.n_timesteps = int(n_timesteps)
        self.wrap = bool(wrap)
        self._speed = float(speed)
        self._playing = True
        self._anchor_wall = 0.0
        self._anchor_pos = 0.0

    # -- queries ------------------------------------------------------------

    @property
    def speed(self) -> float:
        return self._speed

    @property
    def playing(self) -> bool:
        return self._playing

    @property
    def direction(self) -> int:
        """+1 forward, -1 backward (for prefetch hinting)."""
        return 1 if self._speed >= 0 else -1

    def position(self, wall: float) -> float:
        """Fractional timestep position at wall time ``wall``."""
        pos = self._anchor_pos
        if self._playing:
            pos += self._speed * (wall - self._anchor_wall)
        if self.n_timesteps == 1:
            return 0.0
        if self.wrap:
            return pos % self.n_timesteps
        return min(max(pos, 0.0), self.n_timesteps - 1.0)

    def timestep_index(self, wall: float) -> int:
        """Integer timestep at wall time ``wall``."""
        return int(self.position(wall)) % self.n_timesteps

    def lookahead(self, wall: float, lead: float) -> int:
        """The timestep the clock will be on ``lead`` seconds from ``wall``.

        The frame pipeline's prefetch hint: the producer predicts which
        timestep it will need *next* (one production period ahead) and
        asks the loader to stage it while the current frame computes —
        figure 8's "loading can also occur in parallel", aimed where the
        clock is actually going.  A paused clock predicts its current
        timestep; a reversed clock predicts upstream.
        """
        if not self._playing:
            return self.timestep_index(wall)
        return self.timestep_index(wall + max(0.0, float(lead)))

    # -- control (each op re-anchors at the current position) ---------------

    def _reanchor(self, wall: float) -> None:
        self._anchor_pos = self.position(wall)
        self._anchor_wall = wall

    def set_speed(self, speed: float, wall: float) -> None:
        self._reanchor(wall)
        self._speed = float(speed)

    def pause(self, wall: float) -> None:
        self._reanchor(wall)
        self._playing = False

    def resume(self, wall: float) -> None:
        self._anchor_wall = wall
        self._playing = True

    def stop(self, wall: float) -> None:
        """Paper's 'stopped completely': pause without losing position."""
        self.pause(wall)

    def reverse(self, wall: float) -> None:
        """Run the flow backwards from here."""
        self.set_speed(-self._speed, wall)

    def scrub(self, position: float, wall: float) -> None:
        """Jump to an absolute (fractional) timestep position."""
        self._anchor_pos = float(position)
        self._anchor_wall = wall

    def step(self, delta: int, wall: float) -> None:
        """Single-step while paused (frame-by-frame examination)."""
        self._reanchor(wall)
        self._anchor_pos += delta

    def restore(self, snapshot: dict, wall: float) -> None:
        """Re-anchor this clock to a :meth:`snapshot` taken elsewhere.

        Crash recovery: a respawned worker restores the journaled clock
        state so every client's shared flow time resumes where the dead
        worker left it (modulo the outage itself — the clock does not
        replay time that passed while nobody was serving).
        """
        self._speed = float(snapshot.get("speed", self._speed))
        self._playing = bool(snapshot.get("playing", self._playing))
        self.wrap = bool(snapshot.get("wrap", self.wrap))
        self._anchor_pos = float(snapshot.get("position", 0.0))
        self._anchor_wall = wall

    # -- wire ------------------------------------------------------------------

    def snapshot(self, wall: float) -> dict:
        return {
            "position": self.position(wall),
            "timestep": self.timestep_index(wall),
            "speed": self._speed,
            "playing": self._playing,
            "wrap": self.wrap,
            "n_timesteps": self.n_timesteps,
        }
