"""Interactive time control over the unsteady dataset.

Section 2: "The time evolution of the flow can be sped up, slowed down,
run backwards, or stopped completely for detailed examination."  Time is
anchored to a wall clock so every client sampling the shared environment
sees the same flow time; scrubbing, pausing, or changing speed re-anchors.
"""

from __future__ import annotations

__all__ = ["TimeControl"]


class TimeControl:
    """Maps wall-clock time to a (fractional) dataset timestep position.

    Parameters
    ----------
    n_timesteps
        Length of the dataset's timestep sequence.
    speed
        Playback rate in timesteps per wall-clock second; negative runs
        the flow backwards.
    wrap
        ``True`` loops playback (position mod n); ``False`` clamps at the
        sequence ends.
    """

    def __init__(self, n_timesteps: int, speed: float = 10.0, wrap: bool = True) -> None:
        if n_timesteps < 1:
            raise ValueError("need at least one timestep")
        self.n_timesteps = int(n_timesteps)
        self.wrap = bool(wrap)
        self._speed = float(speed)
        self._playing = True
        self._anchor_wall = 0.0
        self._anchor_pos = 0.0
        self._live_fn = None

    # -- live (in situ) mode -------------------------------------------------

    def bind_live(self, latest_fn) -> None:
        """Follow a live producer instead of replaying a finite sequence.

        ``latest_fn()`` returns the newest *published-ready* timestep index
        (or ``-1`` before the first one).  In live mode the clock has no
        schedule of its own: while playing, :meth:`position` is simply the
        producer's frontier — the dataset is unbounded, so there is
        nothing to wrap or clamp — and pausing freezes at the frontier
        reached so far.  Replay-only transport ops (speed, scrub, step,
        reverse) raise ``ValueError``; steering the *solver* is how a live
        session manipulates time (docs/steering.md).
        """
        if not callable(latest_fn):
            raise TypeError("latest_fn must be callable")
        self._live_fn = latest_fn
        self.wrap = False

    @property
    def live(self) -> bool:
        return self._live_fn is not None

    def _latest(self) -> float:
        t = int(self._live_fn())
        if t > self.n_timesteps - 1:
            self.n_timesteps = t + 1
        return float(max(t, 0))

    # -- queries ------------------------------------------------------------

    @property
    def speed(self) -> float:
        return self._speed

    @property
    def playing(self) -> bool:
        return self._playing

    @property
    def direction(self) -> int:
        """+1 forward, -1 backward (for prefetch hinting)."""
        return 1 if self._speed >= 0 else -1

    def position(self, wall: float) -> float:
        """Fractional timestep position at wall time ``wall``."""
        if self._live_fn is not None:
            if self._playing:
                return self._latest()
            return self._anchor_pos
        pos = self._anchor_pos
        if self._playing:
            pos += self._speed * (wall - self._anchor_wall)
        if self.n_timesteps == 1:
            return 0.0
        if self.wrap:
            return pos % self.n_timesteps
        return min(max(pos, 0.0), self.n_timesteps - 1.0)

    def timestep_index(self, wall: float) -> int:
        """Integer timestep at wall time ``wall``."""
        if self._live_fn is not None:
            return int(self.position(wall))
        return int(self.position(wall)) % self.n_timesteps

    def lookahead(self, wall: float, lead: float) -> int:
        """The timestep the clock will be on ``lead`` seconds from ``wall``.

        The frame pipeline's prefetch hint: the producer predicts which
        timestep it will need *next* (one production period ahead) and
        asks the loader to stage it while the current frame computes —
        figure 8's "loading can also occur in parallel", aimed where the
        clock is actually going.  A paused clock predicts its current
        timestep; a reversed clock predicts upstream.
        """
        if not self._playing or self._live_fn is not None:
            # Live production is demand-pull from the frontier; there is
            # no schedule to aim a disk prefetch at.
            return self.timestep_index(wall)
        return self.timestep_index(wall + max(0.0, float(lead)))

    # -- control (each op re-anchors at the current position) ---------------

    def _reanchor(self, wall: float) -> None:
        self._anchor_pos = self.position(wall)
        self._anchor_wall = wall

    def _forbid_live(self, op: str) -> None:
        if self._live_fn is not None:
            raise ValueError(
                f"cannot {op} a live clock: the in situ dataset is unbounded "
                "and follows the solver frontier — steer the solver "
                "(wt.steer) instead"
            )

    def set_speed(self, speed: float, wall: float) -> None:
        self._forbid_live("set the speed of")
        self._reanchor(wall)
        self._speed = float(speed)

    def pause(self, wall: float) -> None:
        self._reanchor(wall)
        self._playing = False

    def resume(self, wall: float) -> None:
        self._anchor_wall = wall
        self._playing = True

    def stop(self, wall: float) -> None:
        """Paper's 'stopped completely': pause without losing position."""
        self.pause(wall)

    def reverse(self, wall: float) -> None:
        """Run the flow backwards from here."""
        self._forbid_live("reverse")
        self.set_speed(-self._speed, wall)

    def scrub(self, position: float, wall: float) -> None:
        """Jump to an absolute (fractional) timestep position."""
        self._forbid_live("scrub")
        self._anchor_pos = float(position)
        self._anchor_wall = wall

    def step(self, delta: int, wall: float) -> None:
        """Single-step while paused (frame-by-frame examination)."""
        self._forbid_live("step")
        self._reanchor(wall)
        self._anchor_pos += delta

    def restore(self, snapshot: dict, wall: float) -> None:
        """Re-anchor this clock to a :meth:`snapshot` taken elsewhere.

        Crash recovery: a respawned worker restores the journaled clock
        state so every client's shared flow time resumes where the dead
        worker left it (modulo the outage itself — the clock does not
        replay time that passed while nobody was serving).
        """
        if self._live_fn is not None:
            # A live clock's position is the producer frontier, which a
            # respawned solver re-derives; only the pause state carries.
            self._playing = bool(snapshot.get("playing", self._playing))
            self._reanchor(wall)
            return
        self._speed = float(snapshot.get("speed", self._speed))
        self._playing = bool(snapshot.get("playing", self._playing))
        self.wrap = bool(snapshot.get("wrap", self.wrap))
        self._anchor_pos = float(snapshot.get("position", 0.0))
        self._anchor_wall = wall

    # -- wire ------------------------------------------------------------------

    def snapshot(self, wall: float) -> dict:
        return {
            "position": self.position(wall),
            "timestep": self.timestep_index(wall),
            "speed": self._speed,
            "playing": self._playing,
            "wrap": self.wrap,
            "n_timesteps": self.n_timesteps,
            "live": self._live_fn is not None,
        }
