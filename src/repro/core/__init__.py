"""The distributed virtual windtunnel itself.

This package composes every substrate into the paper's system (section 5):

* :mod:`~repro.core.timectrl` — interactive control over dataset time
  ("sped up, slowed down, run backwards, or stopped completely").
* :mod:`~repro.core.environment` — the shared virtual environment state
  (rakes, users, grab locks, clock) that lives on the remote system so
  "several workstations ... can access the same data on the host".
* :mod:`~repro.core.engine` — the visualization compute engine (rake
  seeds -> grid coordinates -> tracer tools) with selectable backends.
* :mod:`~repro.core.server` — the remote system: a dlib server exposing
  the windtunnel procedures, computing one shared visualization per
  (environment, timestep) and shipping 12-byte points to every client.
* :mod:`~repro.core.client` — the workstation: devices in, commands out,
  path arrays in, head-tracked stereo frames out, with the rendering loop
  decoupled from network traffic (figure 9).
* :mod:`~repro.core.governor` — the frame-budget feedback loop trading
  "a rich environment" against frame rate (section 1.2).
* :mod:`~repro.core.pipeline` / :mod:`~repro.core.framestore` — figure 8
  made real: the staged load -> compute -> publish producer pipeline and
  the immutable, pre-encoded frame store it publishes into.
"""

from repro.core.timectrl import TimeControl
from repro.core.environment import Environment, UserState
from repro.core.session import SessionExpiredError, SessionLease, SessionTable
from repro.core.engine import ComputeEngine, ToolSettings
from repro.core.framestore import FrameStore, PublishedFrame
from repro.core.pipeline import FramePipeline
from repro.core.server import WindtunnelServer
from repro.core.client import WindtunnelClient
from repro.core.governor import DegradationPolicy, FrameBudgetGovernor
from repro.core.recording import SessionPlayer, SessionRecorder, attach_recorder

__all__ = [
    "FramePipeline",
    "FrameStore",
    "PublishedFrame",
    "SessionRecorder",
    "SessionPlayer",
    "attach_recorder",
    "TimeControl",
    "Environment",
    "UserState",
    "SessionExpiredError",
    "SessionLease",
    "SessionTable",
    "ComputeEngine",
    "ToolSettings",
    "WindtunnelServer",
    "WindtunnelClient",
    "DegradationPolicy",
    "FrameBudgetGovernor",
]
