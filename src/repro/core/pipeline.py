"""Figure 8 made real: the staged load -> compute -> publish frame pipeline.

The paper's figure 8 shows the remote system as *concurrent* processes:
while the current visualization computes, the next timestep loads, and
finished frames stream to the workstation.  Earlier revisions of this
reproduction collapsed all of that onto the RPC path — every ``wt.frame``
call computed, encoded, and serialized inline on the dlib service thread,
so the steady-state frame period was the *sum* of the stage times and a
slow stage stalled every client.

:class:`FramePipeline` restores the overlap:

* a **producer thread** follows the environment clock, loads the needed
  timestep (prefetching where the clock is *going*, one production period
  ahead), locates rake seeds, and integrates the tracers;
* an **encode stage** (its own thread) serializes the finished results
  once into a wire-ready fragment and publishes an immutable
  :class:`~repro.core.framestore.PublishedFrame` into the shared
  :class:`~repro.core.framestore.FrameStore`;
* the dlib service thread's ``wt.frame`` handler becomes a cheap read of
  the store — N clients cost one compute and one encode.

Steady state, the publish period approaches ``max(t_load, t_integrate,
t_encode)`` instead of their sum (the ``benchmarks/test_fig8_live_pipeline``
benchmark measures exactly this against the analytic model in
:mod:`repro.perf.pipeline`).

Production is **demand-gated** so an idle server stays idle and frozen-
clock tests stay deterministic: the producer computes only when a client
is actually waiting for a fresh frame, or when the clock has advanced to
a new timestep while frame demand is live (a ``wt.frame`` arrived within
the demand window).  Environment mutations *invalidate* (wake) the
producer immediately via :meth:`Environment.subscribe`, but never cause
speculative recomputes on their own — the next waiting client does.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from repro.core.environment import Environment
from repro.core.framestore import FrameStore, PublishedFrame, encode_published
from repro.core.governor import FrameBudgetGovernor
from repro.obs import MetricsRegistry
from repro.tracers.integrate import transport_stats
from repro.util.timers import Stopwatch, TimingStats

__all__ = ["FramePipeline"]

log = logging.getLogger(__name__)

STAGES = ("load", "locate", "integrate", "encode")


@dataclass
class _Job:
    """A computed-but-not-yet-encoded frame, handed producer -> encoder."""

    version: int
    timestep: int
    kinds: dict[int, str]
    results: dict
    compute_seconds: float
    stage_seconds: dict = field(default_factory=dict)
    quality: float = 1.0
    batch: dict = field(default_factory=dict)
    steer_epoch: int = 0


class FramePipeline:
    """Producer pipeline feeding a :class:`FrameStore`.

    Parameters
    ----------
    engine
        The compute engine.  In threaded mode the producer thread is the
        *only* caller of its compute methods (the engine's per-rake state
        is not thread-safe).
    env
        The shared environment; the pipeline subscribes to its version
        bumps for immediate invalidation wake-ups.
    store
        Publication point read by the RPC layer.
    governor
        Optional frame-budget governor.  It lives here, on the producer:
        it is fed the *production* cost (load + locate + integrate) of
        every frame actually computed, so cheap cached reads cannot
        dilute its feedback signal.
    time_fn
        The environment wall clock (injectable for deterministic tests).
        Demand-window bookkeeping always uses real ``time.monotonic``.
    threaded
        ``True`` runs the producer and encoder threads (figure 8).
        ``False`` is the serial fallback: ``produce_inline`` runs the
        same stages synchronously on the caller's thread — used by the
        benchmark as the sum-of-stages baseline.
    demand_window
        Seconds (real time) after a ``wt.frame`` request during which the
        clock ticking to a new timestep triggers anticipatory production.
    stage_cost
        Optional ``{stage: seconds}`` of modeled extra work charged inside
        the named stages (idiomatic with the repo's disk/network models);
        the live-pipeline benchmark uses it to build the synthetic
        three-stage workload of the acceptance criteria.
    registry
        Optional :class:`~repro.obs.registry.MetricsRegistry` the pipeline
        records into (``pipeline.*`` metrics).  A private registry is
        created when omitted, so the counter/stats attribute API works
        unchanged for standalone pipelines.
    """

    def __init__(
        self,
        engine,
        env: Environment,
        store: FrameStore,
        *,
        governor: FrameBudgetGovernor | None = None,
        time_fn=time.monotonic,
        threaded: bool = True,
        demand_window: float = 0.5,
        poll_interval: float = 0.02,
        stage_cost: dict | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.engine = engine
        self.env = env
        self.store = store
        self.governor = governor
        self.threaded = bool(threaded)
        self._time_fn = time_fn
        self._demand_window = float(demand_window)
        self._poll_interval = float(poll_interval)
        self.stage_cost = dict(stage_cost or {})
        # In situ provenance hook: when set, ``epoch_fn(timestep)`` is the
        # steering epoch stamped into the published frame for that
        # timestep (0 for replay datasets, which never set it).
        self.epoch_fn = None

        self._running = False
        self._work = threading.Event()
        self._queue: queue.Queue = queue.Queue(maxsize=1)
        self._compute_thread: threading.Thread | None = None
        self._encode_thread: threading.Thread | None = None

        self._state_lock = threading.Lock()
        self._waiters = 0
        self._standing = 0
        self._demand_until = 0.0
        self._last_key: tuple[int, int] | None = None

        self._stats_lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._stage_hist = {
            name: self.registry.histogram(f"pipeline.stage.{name}_seconds")
            for name in STAGES
        }
        # Live views into the registry histograms' running stats, so the
        # pre-registry attribute API (``pipeline.stage_stats["load"].mean``)
        # keeps working while the registry stays the single source of truth.
        self.stage_stats: dict[str, TimingStats] = {
            name: h.stats for name, h in self._stage_hist.items()
        }
        self._compute_hist = self.registry.histogram("pipeline.compute_seconds")
        self.compute_stats = self._compute_hist.stats  # load + locate + integrate
        self._quality_gauge = self.registry.gauge("pipeline.quality")
        self._quality_gauge.set(governor.quality if governor else 1.0)
        self._frames_produced = self.registry.counter("pipeline.frames_produced")
        self._frames_encoded = self.registry.counter("pipeline.frames_encoded")
        self._frames_anticipated = self.registry.counter(
            "pipeline.frames_anticipated"
        )
        self._requests = self.registry.counter("pipeline.requests")
        self._invalidations = self.registry.counter("pipeline.invalidations")
        self._produce_errors = self.registry.counter("pipeline.produce_errors")
        self._idle_cycles = self.registry.counter("pipeline.idle_cycles")

        if engine.loader is not None:
            # Prefetch prediction is the pipeline's job now — see
            # ``_predict_next``.  This also covers the engine's internal
            # loads during the integrate stage.
            engine.auto_prefetch = False
            # Per-tier cache counters (cache.l1/l2/source.*) join the
            # server's registry, so ``wt.metrics`` reconciles exactly
            # with the loads this pipeline injects.
            engine.loader.bind_registry(self.registry)
        if getattr(engine, "registry", None) is None:
            # The engine's fused-compute gauges (engine.fused_batch_size,
            # engine.points_per_second) land in the pipeline's registry so
            # ``wt.metrics`` exposes one coherent namespace per server.
            engine.registry = self.registry

        env.subscribe(self.invalidate)

    # -- registry-backed counters (read API unchanged) -----------------------

    @property
    def frames_produced(self) -> int:
        return self._frames_produced.value

    @property
    def frames_encoded(self) -> int:
        return self._frames_encoded.value

    @property
    def frames_anticipated(self) -> int:
        return self._frames_anticipated.value

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def produce_errors(self) -> int:
        return self._produce_errors.value

    @property
    def idle_cycles(self) -> int:
        """Producer wake-ups that found nothing to do.

        Event-driven tests wait for this to advance instead of sleeping:
        once it ticks past a remembered value, the producer has completed
        a full look at the current key and decided against producing.
        """
        return self._idle_cycles.value

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FramePipeline":
        if not self.threaded:
            return self
        if self._running:
            raise RuntimeError("pipeline already started")
        self._running = True
        self._compute_thread = threading.Thread(
            target=self._compute_loop, name="wt-frame-producer", daemon=True
        )
        self._encode_thread = threading.Thread(
            target=self._encode_loop, name="wt-frame-encoder", daemon=True
        )
        self._compute_thread.start()
        self._encode_thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        self._work.set()
        for t in (self._compute_thread, self._encode_thread):
            if t is not None and t.is_alive():
                t.join(timeout=5.0)
        self._compute_thread = None
        self._encode_thread = None

    @property
    def alive(self) -> bool:
        """Whether a waiting reader can still expect a publication."""
        if not self.threaded:
            return True  # inline production happens on the caller's thread
        return self._running and self._compute_thread is not None

    # -- demand signalling (called from the dlib service thread) -----------

    def note_demand(self) -> None:
        """A ``wt.frame`` arrived: keep anticipatory production live."""
        until = time.monotonic() + self._demand_window
        with self._state_lock:
            if until > self._demand_until:
                self._demand_until = until

    def note_waiter(self) -> None:
        """Register a reader blocked on a fresh frame (non-scoped form).

        The parked-continuation path uses this pair directly: ``wt.frame``
        defers its reply, registers a waiter, and the publication (or
        timeout) callback calls :meth:`forget_waiter` — there is no stack
        frame to scope a context manager to.
        """
        with self._state_lock:
            self._waiters += 1
            self._requests.inc()
        self._work.set()

    def forget_waiter(self) -> None:
        """Balance a :meth:`note_waiter` once the reader unblocks."""
        with self._state_lock:
            self._waiters -= 1

    @contextmanager
    def waiting(self):
        """Scope in which a reader is blocked on a fresh frame.

        Registering a waiter is what authorizes the producer to compute
        outside the tick-anticipation path, so a frozen clock plus an
        unchanged environment still yields exactly one compute per
        distinct ``(version, timestep)``.
        """
        self.note_waiter()
        try:
            yield
        finally:
            self.forget_waiter()

    def add_standing_demand(self) -> None:
        """A push-mode subscriber appeared: produce on every key change.

        Standing demand is the push topology's substitute for per-call
        waiters — subscribed clients never poll, so the producer treats
        any change of ``(version, timestep)`` as demanded while at least
        one standing subscriber exists.  Idle-key behaviour is unchanged:
        a frozen clock and an untouched environment still compute
        nothing.
        """
        with self._state_lock:
            self._standing += 1
        self._work.set()

    def remove_standing_demand(self) -> None:
        with self._state_lock:
            self._standing = max(0, self._standing - 1)

    @property
    def standing_demand(self) -> int:
        with self._state_lock:
            return self._standing

    def invalidate(self) -> None:
        """Environment changed: wake the producer immediately.

        Wired to :meth:`Environment.subscribe`, so it runs under the
        environment lock — it must stay cheap and non-blocking.
        """
        self._invalidations.inc()
        self._work.set()

    def nudge(self) -> None:
        """Wake the producer without counting an invalidation.

        The in situ producer calls this after installing a fresh solver
        timestep: the environment did not change (no version bump), but
        the clock's live frontier did, so the producer should re-examine
        its key now instead of on the next poll tick.
        """
        self._work.set()

    # -- the producer ------------------------------------------------------

    def _current_key(self) -> tuple[int, int]:
        return (
            self.env.version,
            self.env.clock.timestep_index(self._time_fn()),
        )

    def _should_produce(self) -> str | None:
        """Reason to produce now: ``"request"``, ``"tick"``, or ``None``."""
        key = self._current_key()
        with self._state_lock:
            last = self._last_key
            if key == last:
                return None
            if self._waiters > 0 or self._standing > 0:
                return "request"
            if (
                last is not None
                and key[0] == last[0]
                and time.monotonic() < self._demand_until
            ):
                # The clock rolled to a new timestep while clients are
                # actively polling: keep the published frame current so
                # their next read is a cache hit.
                return "tick"
        return None

    def _compute_loop(self) -> None:
        while self._running:
            reason = self._should_produce()
            if reason is None:
                self._idle_cycles.inc()
                self._work.wait(self._poll_interval)
                self._work.clear()
                continue
            try:
                job = self._produce()
            except Exception:  # pragma: no cover - defensive
                self._produce_errors.inc()
                with self._state_lock:
                    self._last_key = None  # let a waiter retry
                log.exception("frame production failed")
                time.sleep(self._poll_interval)
                continue
            if reason == "tick":
                self._frames_anticipated.inc()
            self._submit(job)

    def _predict_next(self, timestep: int, direction: int) -> int:
        """The timestep production will need next.

        One production period ahead on the live clock; when the clock is
        slower than (or equal to) the pipeline that lands on the current
        timestep, in which case fall back to classic double buffering:
        the immediate neighbour in the direction of play.
        """
        clock = self.env.clock
        lead = self.production_period_estimate()
        predicted = clock.lookahead(self._time_fn(), lead) if lead > 0 else timestep
        if predicted == timestep:
            step = 1 if direction >= 0 else -1
            predicted = timestep + step
            if clock.wrap:
                predicted %= clock.n_timesteps
        return predicted

    def _charge(self, stage: str) -> None:
        cost = self.stage_cost.get(stage, 0.0)
        if cost > 0.0:
            time.sleep(cost)

    def _produce(self) -> _Job:
        """Run the load / locate / integrate stages for the current key."""
        wall = self._time_fn()
        version, rakes = self.env.rakes_snapshot()
        clock = self.env.clock
        timestep = clock.timestep_index(wall)
        direction = clock.direction
        quality = self.governor.quality if self.governor else 1.0
        settings = replace(self.engine.settings)
        stage_seconds: dict[str, float] = {}

        loader = self.engine.loader
        with Stopwatch() as sw:
            if loader is not None:
                loader.load(timestep, direction, auto_prefetch=False)
                # Aim the prefetch where the clock is actually going: the
                # timestep one production period ahead (which is not t+1
                # when the clock outruns production).  Issued *now*, at
                # the top of the cycle, so the background read overlaps
                # this frame's integration and is resident when the next
                # cycle starts.  The pipeline owns prefetch policy
                # outright (``auto_prefetch=False`` above): the naive
                # t+direction guess would waste the single background
                # worker on reads nobody will consume.
                loader.prefetch(self._predict_next(timestep, direction))
            self._charge("load")
        stage_seconds["load"] = sw.elapsed

        with Stopwatch() as sw:
            for rake in rakes.values():
                self.engine.rake_seeds_grid(rake)
            self._charge("locate")
        stage_seconds["locate"] = sw.elapsed

        with Stopwatch() as sw:
            results = self.engine.compute_rakes(
                rakes,
                timestep,
                direction=direction,
                quality=quality,
                settings=settings,
            )
            self._charge("integrate")
        stage_seconds["integrate"] = sw.elapsed

        compute_seconds = sum(stage_seconds.values())
        with self._stats_lock:
            for name in ("load", "locate", "integrate"):
                self._stage_hist[name].observe(stage_seconds[name])
            self._compute_hist.observe(compute_seconds)
        self._frames_produced.inc()
        if self.governor is not None:
            self.governor.record(compute_seconds)
            self._quality_gauge.set(self.governor.quality)
        with self._state_lock:
            self._last_key = (version, timestep)

        epoch_fn = self.epoch_fn
        return _Job(
            version=version,
            timestep=timestep,
            kinds={rid: rake.kind for rid, rake in rakes.items()},
            results=results,
            compute_seconds=compute_seconds,
            stage_seconds=stage_seconds,
            quality=quality,
            steer_epoch=int(epoch_fn(timestep)) if epoch_fn is not None else 0,
            batch={
                "fused": bool(getattr(self.engine, "fused", False)),
                "fused_batch_size": int(
                    getattr(self.engine, "fused_batch_size", 0)
                ),
                "points_per_second": float(
                    getattr(self.engine, "points_per_second", 0.0)
                ),
            },
        )

    def _submit(self, job: _Job) -> None:
        """Hand a computed frame to the encode stage (bounded queue).

        ``maxsize=1`` is the pipeline's backpressure: a producer that
        outruns the encoder blocks here, so at most one frame is ever
        in flight between the stages.
        """
        while self._running:
            try:
                self._queue.put(job, timeout=0.1)
                return
            except queue.Full:
                continue

    def _encode_loop(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.1)
            except queue.Empty:
                if not self._running:
                    return
                continue
            try:
                self._encode_and_publish(job)
            except Exception:  # pragma: no cover - defensive
                self._produce_errors.inc()
                log.exception("frame encoding failed")

    def _encode_and_publish(self, job: _Job) -> PublishedFrame:
        with Stopwatch() as sw:
            enc = encode_published(job.kinds, job.results)
            self._charge("encode")
        stage_seconds = dict(job.stage_seconds)
        stage_seconds["encode"] = sw.elapsed
        with self._stats_lock:
            self._stage_hist["encode"].observe(sw.elapsed)
        self._frames_encoded.inc()
        frame = PublishedFrame(
            version=job.version,
            timestep=job.timestep,
            seq=0,  # stamped by the store
            paths=enc.paths,
            paths_wire=enc.wire,
            compute_seconds=job.compute_seconds,
            stage_seconds=stage_seconds,
            quality=job.quality,
            n_points=enc.n_points,
            batch=job.batch,
            digests=enc.digests,
            rake_fragments=enc.fragments,
            steer_epoch=job.steer_epoch,
        )
        return self.store.publish(frame)

    # -- serial fallback ---------------------------------------------------

    def produce_inline(self) -> PublishedFrame:
        """Compute, encode, and publish synchronously (serial mode).

        Runs the identical stage code on the caller's thread, so the
        immutability and encode-once guarantees hold in both modes and
        the benchmark's serial baseline measures sum-of-stages honestly.
        """
        return self._encode_and_publish(self._produce())

    # -- stats -------------------------------------------------------------

    def production_period_estimate(self) -> float:
        """Steady-state publish period the stage times predict: max(t_i)."""
        with self._stats_lock:
            means = [s.mean for s in self.stage_stats.values() if s.count]
        return max(means) if means else 0.0

    def serial_period_estimate(self) -> float:
        """What the frame period would be unpipelined: sum(t_i)."""
        with self._stats_lock:
            return sum(s.mean for s in self.stage_stats.values() if s.count)

    def stats(self) -> dict:
        """Stage-resolved pipeline statistics (``wt.pipeline_stats``)."""
        with self._stats_lock:
            stages = {
                name: {
                    "count": s.count,
                    "mean": s.mean,
                    "min": s.min if s.count else 0.0,
                    "max": s.max,
                    "total": s.total,
                }
                for name, s in self.stage_stats.items()
            }
            frames_produced = self.frames_produced
            frames_encoded = self.frames_encoded
        return {
            "pipelined": self.threaded,
            "frames_produced": frames_produced,
            "frames_encoded": frames_encoded,
            "frames_published": self.store.published_total,
            "publish_seq": self.store.seq,
            "publish_period_mean": self.store.publish_period_mean,
            "stages": stages,
            "steady_period_estimate": self.production_period_estimate(),
            "serial_period_estimate": self.serial_period_estimate(),
            "frames_anticipated": self.frames_anticipated,
            "standing_demand": self.standing_demand,
            "requests": self.requests,
            "invalidations": self.invalidations,
            "produce_errors": self.produce_errors,
            "idle_cycles": self.idle_cycles,
            "governor": self.governor.to_wire() if self.governor else None,
            "compute": {
                "fused": bool(getattr(self.engine, "fused", False)),
                "fused_batch_size": int(
                    getattr(self.engine, "fused_batch_size", 0)
                ),
                "points_per_second": float(
                    getattr(self.engine, "points_per_second", 0.0)
                ),
                "backend": getattr(self.engine, "backend", None),
                "transport": transport_stats(),
            },
            "cache": (
                self.engine.cache_stats()
                if hasattr(self.engine, "cache_stats")
                else None
            ),
        }
