"""The workstation: input devices in, stereo frames out.

Figure 9: the workstation runs two cooperating halves — one handling
network traffic with the remote system, one rendering the latest received
environment state head-tracked "at very high rates", decoupled so
"graphics performance is not tied to the network and remote computation
performance".  :class:`WindtunnelClient` implements both halves: the
synchronous command/frame RPC cycle, and a render path that draws
whatever state arrived last from whatever head pose the BOOM reports
*now*.

That decoupling is also the degradation story.  When the network fails,
the renderer keeps drawing the last good frame (flagged
:attr:`state_stale`) while the network half retries: idempotent calls
back off, reconnect through the stream factory, and resume the session
with ``wt.rejoin`` — so a transient stall costs staleness, not a crash.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.dlib.client import DlibClient, DlibRemoteError, RetryPolicy
from repro.dlib.protocol import DlibError, DlibTimeoutError, decode_path_entry
from repro.dlib.transport import Stream
from repro.render.camera import Camera
from repro.render.framebuffer import Framebuffer
from repro.render.scene import HandGlyph, HeadGlyph, PathBundle, RakeGlyph, Scene
from repro.render.stereo import render_anaglyph
from repro.util.timers import FrameTimer

__all__ = ["WindtunnelClient"]

#: Path colors per tool kind (streaklines get the smoke fade).
_TOOL_COLORS = {
    "streamline": (255, 255, 255),
    "particle_path": (120, 220, 255),
    "streakline": (230, 230, 230),
}

#: Windtunnel procedures safe to re-issue after a transport failure.
#: ``wt.update`` is last-write-wins, the reads are pure, ``wt.rejoin``
#: resumes the same lease however often it lands.  ``wt.add_rake`` /
#: ``wt.remove_rake`` / ``wt.time`` are *not* here: re-running them
#: duplicates (or double-steps) a mutation.
_IDEMPOTENT_PROCEDURES = frozenset(
    {
        "wt.update",
        "wt.frame",
        "wt.subscribe",
        "wt.snapshot",
        "wt.stats",
        "wt.pipeline_stats",
        "wt.heartbeat",
        "wt.isosurface",
        "wt.rejoin",
        "wt.metrics",
        "dlib.ping",
        "dlib.stats",
        "dlib.metrics",
    }
)

_NETWORK_ERRORS = (DlibTimeoutError, ConnectionError, OSError)


class WindtunnelClient:
    """A workstation client of the distributed windtunnel.

    Parameters
    ----------
    host, port / stream
        How to reach the server: an address, or a preconnected stream
        (e.g. a :class:`~repro.netsim.channel.ThrottledChannel`).
    stream_factory
        Zero-argument callable minting a fresh connected stream; enables
        automatic reconnect + session resume.  Defaults to re-dialing
        ``host:port`` when an address was given.
    retry
        :class:`~repro.dlib.client.RetryPolicy` for idempotent calls
        (``None`` disables retries: first failure propagates).
    call_timeout
        Per-call deadline in seconds; ``None`` waits forever.
    width, height
        Framebuffer size.  The paper's VGX ran 1280x1024; tests use less.
    stereo
        Render writemask anaglyph stereo (section 3) vs mono.
    trace
        ``True`` traces every RPC: the server's span tree for the last
        call lands on :attr:`last_trace` / :meth:`trace_report`.
    registry
        Optional client-side :class:`~repro.obs.registry.MetricsRegistry`
        recording per-procedure RPC latency histograms.
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        *,
        stream: Stream | None = None,
        stream_factory=None,
        retry: RetryPolicy | None = None,
        call_timeout: float | None = None,
        name: str = "",
        width: int = 320,
        height: int = 240,
        stereo: bool = True,
        ipd: float = 0.064,
        fov_y: float = np.pi / 2,
        trace: bool = False,
        registry=None,
    ) -> None:
        self._session_token: str | None = None
        self.last_network_error: BaseException | None = None
        self.state_stale = False
        self.network_failures = 0
        self.rejoins = 0
        self._rpc = DlibClient(
            host,
            port,
            stream=stream,
            stream_factory=stream_factory,
            call_timeout=call_timeout,
            retry=retry,
            idempotent=_IDEMPOTENT_PROCEDURES,
            on_reconnect=self._on_reconnect,
            trace=trace,
            registry=registry,
            on_push=self._on_push_frame,
        )
        info = self._rpc.call("wt.join", name)
        self.client_id: int = info["client_id"]
        self._session_token = info.get("token")
        self.lease_seconds: float | None = info.get("lease_seconds")
        self.dataset_info = info
        self.fb = Framebuffer(width, height)
        self.stereo = stereo
        self.ipd = ipd
        self.fov_y = fov_y
        self.head_pose = np.eye(4)
        self.latest_state: dict | None = None
        self.timer = FrameTimer()
        self._net_thread: threading.Thread | None = None
        self._net_stop = threading.Event()
        self._state_lock = threading.Lock()
        self._closed = False
        # v2 frame delivery (docs/network.md): active subscription info,
        # the reassembled per-rake state deltas are merged into, and the
        # last publication seq acknowledged back to the server.
        self.subscription: dict | None = None
        self._held_paths: dict = {}
        self._acked_seq = 0
        self._prev_bytes_received = 0
        self._goodput = 0.0

    # -- resilience ----------------------------------------------------------

    @property
    def reconnects(self) -> int:
        """How many times the transport was re-dialed."""
        return self._rpc.reconnects

    def _on_reconnect(self, rpc: DlibClient) -> None:
        """After every reconnect, resume the session before anything else."""
        if self._session_token is None:
            return  # initial connect: wt.join has not happened yet
        rpc.call_once("wt.rejoin", self.client_id, self._session_token)
        self.rejoins += 1

    def _call(self, procedure: str, *args):
        """RPC with failure bookkeeping and transparent session resume.

        Transport failures are recorded on :attr:`last_network_error`
        (observable even when a retry or reconnect later succeeds — see
        :attr:`network_failures`).  A server-side
        ``SessionExpiredError`` — our lease lapsed and the reaper took
        the seat — triggers one ``wt.rejoin`` and a single re-issue.
        """
        try:
            try:
                return self._rpc.call(procedure, *args)
            except _NETWORK_ERRORS as exc:
                self.last_network_error = exc
                self.network_failures += 1
                raise
        except DlibRemoteError as exc:
            if exc.remote_type != "SessionExpiredError" or self._session_token is None:
                raise
            self._rpc.call_once("wt.rejoin", self.client_id, self._session_token)
            self.rejoins += 1
            return self._rpc.call(procedure, *args)

    def rejoin(self) -> dict:
        """Explicitly resume this session (normally automatic)."""
        if self._session_token is None:
            raise RuntimeError("no session token; cannot rejoin")
        info = self._rpc.call_once("wt.rejoin", self.client_id, self._session_token)
        self.rejoins += 1
        return info

    def heartbeat(self) -> dict:
        """Tell the server this client is alive (piggybacked on every
        call anyway; useful when idle)."""
        return self._call("wt.heartbeat", self.client_id)

    # -- commands ------------------------------------------------------------

    def send_input(self, head_position, hand_position, gesture: str) -> dict:
        """Ship this frame's user commands (section 5.1's 'hand position,
        hand gestures ... and any other control data')."""
        return self._call(
            "wt.update",
            self.client_id,
            np.asarray(head_position, dtype=np.float32),
            np.asarray(hand_position, dtype=np.float32),
            gesture,
        )

    def add_rake(self, end_a, end_b, n_seeds: int = 10, kind: str = "streamline") -> int:
        from repro.tracers.rake import Rake

        rake = Rake(end_a, end_b, n_seeds=n_seeds, kind=kind)
        return self._call("wt.add_rake", self.client_id, rake.to_dict())

    def remove_rake(self, rake_id: int) -> None:
        self._call("wt.remove_rake", self.client_id, rake_id)

    def time_control(self, op: str, value: float = 0.0) -> dict:
        """pause / resume / speed / scrub / step / reverse."""
        return self._call("wt.time", self.client_id, op, value)

    def server_stats(self) -> dict:
        return self._call("wt.stats")

    def pipeline_stats(self) -> dict:
        """Stage-resolved frame-pipeline statistics (``wt.pipeline_stats``)."""
        return self._call("wt.pipeline_stats", self.client_id)

    def metrics(self, trace_limit: int = 8) -> dict:
        """The server's observability snapshot (``wt.metrics``): the full
        metrics registry plus its most recent span trees."""
        return self._call("wt.metrics", self.client_id, trace_limit)

    @property
    def last_trace(self) -> dict | None:
        """Span tree of the last traced RPC (``None`` until one runs)."""
        return self._rpc.last_trace

    def trace_report(self) -> str:
        """Pretty-print the last traced RPC next to its observed latency."""
        return self._rpc.trace_report()

    def set_tool_settings(self, **settings) -> dict:
        """Adjust shared tracer parameters (steps, dt, streak length)."""
        return self._call("wt.set_tool_settings", self.client_id, settings)

    def steer(self, **changes) -> dict:
        """Steer a live (in situ) windtunnel (``wt.steer``).

        Accepted keys: ``u_inf``, ``dt``, ``taper``, ``angle``,
        ``paused``, ``reset`` (docs/steering.md).  Returns the assigned
        steering epoch — watch :attr:`latest_state` (or frame replies)
        for ``steer_epoch >= epoch`` to know when visible frames include
        the change.  Deliberately not idempotent: re-issuing after a
        transport failure would double-apply the change under a fresh
        epoch.  Raises the server's error on conflicts (another user
        holds the steering lease) or out-of-range parameters.
        """
        return self._call("wt.steer", self.client_id, changes)

    def release_steering(self) -> dict:
        """Release the steering lease early (``wt.steer_release``)."""
        return self._call("wt.steer_release", self.client_id)

    def request_isosurface(self, level_fraction: float = 0.75) -> dict:
        """Fetch a |v| isosurface of the current timestep from the server.

        Returns the server payload; pass ``payload["triangles"]`` to a
        :class:`~repro.render.scene.TriangleMesh` to draw it.
        """
        return self._call("wt.isosurface", self.client_id, level_fraction)

    # -- v2 frame delivery (docs/network.md) ---------------------------------

    def subscribe(
        self,
        *,
        encoding: str = "v1",
        deltas: bool = True,
        decimate: int = 1,
        adaptive: bool = False,
        rakes=None,
        kinds=None,
        push: bool = False,
    ) -> dict:
        """Negotiate bandwidth-adaptive (v2) frame delivery.

        Returns the server's echo of the effective settings.  Against a
        pre-v2 server the ``LookupError`` is swallowed and ``{"enabled":
        False, "supported": False}`` comes back — the client simply keeps
        using the v1 path, so new clients run against old servers
        unchanged.

        With ``push=True`` the server also streams frames to this
        connection as it publishes them (PUSH messages), without waiting
        for ``wt.frame`` polls.  Pushed frames integrate into
        :attr:`latest_state` exactly like pulled ones; they surface
        whenever the stream is read — during any RPC, or via
        :meth:`drain_pushes` while idle.  The reply's ``"push"`` key
        confirms whether the server actually armed push delivery.
        """
        options: dict = {
            "encoding": encoding,
            "deltas": deltas,
            "decimate": decimate,
            "adaptive": adaptive,
            "push": push,
        }
        if rakes is not None:
            options["rakes"] = [str(r) for r in rakes]
        if kinds is not None:
            options["kinds"] = [str(k) for k in kinds]
        try:
            info = self._call("wt.subscribe", self.client_id, options)
        except DlibRemoteError as exc:
            if exc.remote_type == "LookupError":
                with self._state_lock:
                    self.subscription = None
                return {"enabled": False, "supported": False}
            raise
        with self._state_lock:
            self.subscription = info
            self._held_paths = {}
            self._acked_seq = 0  # next frame is a keyframe under the new terms
        return info

    def unsubscribe(self) -> None:
        """Return to plain v1 frame delivery."""
        try:
            self._call("wt.subscribe", self.client_id, {"enabled": False})
        except DlibRemoteError as exc:
            if exc.remote_type != "LookupError":
                raise
        with self._state_lock:
            self.subscription = None
            self._held_paths = {}
            self._acked_seq = 0

    def _note_goodput(self) -> None:
        """Update the receive-side throughput estimate from the last call."""
        received = getattr(self._rpc.stream, "bytes_received", 0)
        delta = received - self._prev_bytes_received
        self._prev_bytes_received = received
        latency = self._rpc.last_latency
        if delta > 0 and latency > 0:
            sample = delta / latency
            self._goodput = (
                sample if self._goodput == 0 else 0.7 * self._goodput + 0.3 * sample
            )

    def _integrate_v2(self, state: dict) -> dict:
        """Merge a v2 response into held per-rake state; ack the seq.

        A delta overlays the changed rakes onto what we hold and drops the
        removed ones; a keyframe replaces everything.  If a delta arrives
        against a base we do not hold (lost state), the ack resets to 0 so
        the next request resyncs with a keyframe.
        """
        v2 = state["v2"]
        decoded = {
            rid: decode_path_entry(entry)
            for rid, entry in state.get("paths", {}).items()
        }
        with self._state_lock:
            if v2["mode"] == "delta":
                if int(v2["base"]) != self._acked_seq:
                    self._acked_seq = 0  # resync on the next fetch
                    return dict(state, paths=dict(self._held_paths))
                held = dict(self._held_paths)
                for rid in v2.get("removed", []):
                    held.pop(rid, None)
                held.update(decoded)
            else:
                held = decoded
            self._held_paths = held
            self._acked_seq = int(v2["seq"])
        return dict(state, paths=held)

    # -- push-mode delivery ----------------------------------------------------

    @property
    def pushed_frames(self) -> int:
        """How many server-pushed frames this client has received."""
        return self._rpc.pushes_received

    def _on_push_frame(self, state) -> None:
        """Integrate one server-pushed frame (same shape as a v2 pull).

        Runs from whichever thread is reading the stream.  Frames that
        are not v2 envelopes are ignored — the server never sends them,
        but a defensive client outlives a confused one.
        """
        if not isinstance(state, dict) or "v2" not in state:
            return
        state = self._integrate_v2(state)
        with self._state_lock:
            self.latest_state = state
            self.state_stale = False

    def drain_pushes(self, timeout: float = 0.0) -> int:
        """Deliver any buffered server-pushed frames while idle.

        Returns how many frames arrived.  Call this from the same thread
        that issues RPCs (or with external serialization) — the stream
        carries one conversation.
        """
        return self._rpc.poll_push(timeout)

    # -- the network half (figure 9, left process) ------------------------------

    def fetch_frame(self) -> dict:
        """Pull the current shared visualization from the server."""
        if self.subscription is None:
            state = self._call("wt.frame", self.client_id)
        else:
            with self._state_lock:
                ack = self._acked_seq
            state = self._call("wt.frame", self.client_id, ack, self._goodput)
            self._note_goodput()
            if "v2" in state:
                state = self._integrate_v2(state)
        with self._state_lock:
            self.latest_state = state
            self.state_stale = False
        return state

    def start_network_loop(self, interval: float = 0.05, *, max_backoff: float = 2.0) -> None:
        """Run fetch_frame continuously in a background thread.

        The loop never dies on a network failure: it records the error on
        :attr:`last_network_error`, marks :attr:`state_stale` (the render
        half keeps drawing the last good frame — figure 9's decoupling),
        and keeps retrying with exponential backoff up to ``max_backoff``
        seconds until :meth:`stop_network_loop`.
        """
        if self._net_thread is not None:
            raise RuntimeError("network loop already running")
        self._net_stop.clear()
        floor = max(interval, 0.01)

        def loop() -> None:
            backoff = floor
            while not self._net_stop.is_set():
                try:
                    self.fetch_frame()
                except _NETWORK_ERRORS + (DlibRemoteError,) as exc:
                    self.last_network_error = exc
                    with self._state_lock:
                        self.state_stale = True
                    self._net_stop.wait(backoff)
                    backoff = min(max_backoff, backoff * 2.0)
                    continue
                backoff = floor
                self._net_stop.wait(interval)

        self._net_thread = threading.Thread(target=loop, daemon=True)
        self._net_thread.start()

    def stop_network_loop(self) -> None:
        if self._net_thread is not None:
            self._net_stop.set()
            self._net_thread.join(timeout=5.0)
            self._net_thread = None

    # -- the render half (figure 9, right process) --------------------------------

    def build_scene(self, state: dict | None = None) -> Scene:
        """Turn a frame payload into a drawable scene."""
        if state is None:
            with self._state_lock:
                state = self.latest_state
        scene = Scene()
        if state is None:
            return scene
        for rid, path in state.get("paths", {}).items():
            kind = path["kind"]
            scene.add(
                PathBundle(
                    paths=path["vertices"].astype(np.float64),
                    lengths=np.asarray(path["lengths"]),
                    color=_TOOL_COLORS.get(kind, (255, 255, 255)),
                    fade=kind == "streakline",
                )
            )
        env = state.get("env", {})
        for rid, rake in env.get("rakes", {}).items():
            scene.add(
                RakeGlyph(
                    np.asarray(rake["end_a"]),
                    np.asarray(rake["end_b"]),
                    held=rake.get("owner") is not None,
                )
            )
        for uid, user in env.get("users", {}).items():
            if int(uid) == self.client_id:
                scene.add(HandGlyph(np.asarray(user["hand_position"], dtype=np.float64)))
            else:
                # Shared sessions show where everyone is (section 5.1).
                scene.add(HeadGlyph(np.asarray(user["head_position"], dtype=np.float64)))
        return scene

    def render(self, head_pose: np.ndarray | None = None) -> Framebuffer:
        """Draw the latest state from the (current!) head pose.

        This can run far faster than the network cycle — the decoupling
        that keeps head tracking responsive (figure 9) — though the full
        interaction cycle must still meet the 1/8 s budget.
        """
        if head_pose is not None:
            self.head_pose = np.asarray(head_pose, dtype=np.float64)
        camera = Camera(self.head_pose, fov_y=self.fov_y)
        scene = self.build_scene()
        if self.stereo:
            render_anaglyph(scene, camera, self.fb, self.ipd)
        else:
            self.fb.clear()
            scene.draw(self.fb, camera)
        return self.fb

    # -- the full cycle -------------------------------------------------------------

    def frame(
        self,
        head_pose: np.ndarray,
        hand_position,
        gesture: str = "open",
    ) -> Framebuffer:
        """One complete interaction cycle: input -> compute -> render.

        This whole method is what must finish "in less than 1/8th of a
        second" (section 1.2); stage timings land in :attr:`timer`.
        """
        start = time.perf_counter()
        head_position = np.asarray(head_pose, dtype=np.float64)[:3, 3]
        with self.timer.stage("send_input"):
            self.send_input(head_position, hand_position, gesture)
        with self.timer.stage("fetch"):
            self.fetch_frame()
        with self.timer.stage("render"):
            fb = self.render(head_pose)
        self.timer.frame(time.perf_counter() - start)
        return fb

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.stop_network_loop()
        try:
            self._rpc.call_once("wt.leave", self.client_id)
        except (DlibError, ConnectionError, OSError):
            pass  # best-effort: the reaper handles whatever we couldn't say
        self._rpc.close()

    def __enter__(self) -> "WindtunnelClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
