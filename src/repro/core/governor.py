"""Frame-budget governors: trading richness for frame rate and bandwidth.

Section 1.2: "a tradeoff must be made between a rich environment and
frame rate", with a hard 1/8 s ceiling and a 10 fps target.  Two feedback
controllers hold that budget from opposite ends of the wire:

* :class:`FrameBudgetGovernor` watches measured *compute* times and
  adjusts a quality scalar the compute engine applies to path lengths.
* :class:`DegradationPolicy` watches measured *delivery* throughput and
  walks a per-client encoding ladder (full → delta → quantized →
  decimated), shrinking bytes/frame as the channel degrades — the
  software answer to UltraNet shipping 1 MB/s of its rated 13
  (docs/network.md, "Adaptive degradation").

Invariants:

* The compute governor lives on the frame pipeline's *producer* thread,
  not the RPC path: it is fed the production cost of each published
  frame (load + locate + integrate), so quality tracks what actually
  bounds the frame period under figure 8's overlapped architecture, and
  a storm of cheap cached ``wt.frame`` reads can no longer dilute the
  feedback signal.
* The degradation policy never changes *what* a frame contains, only how
  it is encoded for one subscriber; it is consulted on the dlib service
  thread, whose serial FCFS dispatch means per-client state needs no
  locking (docs/architecture.md, "Serial service").
* Both are pure feedback loops over numbers fed to them — neither reads
  clocks or sockets itself, so tests drive them deterministically.
"""

from __future__ import annotations

__all__ = ["DegradationPolicy", "FrameBudgetGovernor"]


class FrameBudgetGovernor:
    """Multiplicative-increase / multiplicative-decrease quality control.

    ``quality`` in ``[min_quality, 1]`` scales the tracer workload.  A
    frame over ``target`` (default 80% of the hard budget, leaving head-
    room for network and rendering) cuts quality; sustained headroom
    raises it gently.  Assuming the computation scales linearly with the
    particle count (the paper's Table 3 assumption), quality maps straight
    onto achievable particles.
    """

    def __init__(
        self,
        budget: float = 0.125,
        *,
        target_fraction: float = 0.8,
        min_quality: float = 0.05,
        decrease: float = 0.7,
        increase: float = 1.05,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        if not (0.0 < target_fraction <= 1.0):
            raise ValueError("target_fraction must be in (0, 1]")
        if not (0.0 < min_quality <= 1.0):
            raise ValueError("min_quality must be in (0, 1]")
        if not (0.0 < decrease < 1.0 < increase):
            raise ValueError("need decrease < 1 < increase")
        self.budget = float(budget)
        self.target = float(budget * target_fraction)
        self.min_quality = float(min_quality)
        self._decrease = float(decrease)
        self._increase = float(increase)
        self.quality = 1.0
        self.frames_over_budget = 0
        self.frames_recorded = 0
        self._quality_gauge = None
        self._recorded_counter = None
        self._over_budget_counter = None

    def bind_registry(self, registry) -> "FrameBudgetGovernor":
        """Mirror governor state into a metrics registry (``governor.*``).

        Every :meth:`record` thereafter updates the ``governor.quality``
        gauge and the recorded / over-budget counters, so the feedback
        loop is visible through ``wt.metrics`` without a bespoke RPC.
        """
        self._quality_gauge = registry.gauge("governor.quality")
        self._recorded_counter = registry.counter("governor.frames_recorded")
        self._over_budget_counter = registry.counter("governor.frames_over_budget")
        self._quality_gauge.set(self.quality)
        return self

    def record(self, frame_seconds: float) -> float:
        """Feed one measured frame time; returns the updated quality."""
        if frame_seconds < 0:
            raise ValueError("frame time must be non-negative")
        self.frames_recorded += 1
        if self._recorded_counter is not None:
            self._recorded_counter.inc()
        if frame_seconds > self.budget:
            self.frames_over_budget += 1
            if self._over_budget_counter is not None:
                self._over_budget_counter.inc()
        if frame_seconds > self.target:
            # Scale down proportionally to the overshoot, bounded by the
            # configured decrease factor.
            factor = max(self._decrease, self.target / frame_seconds)
            self.quality = max(self.min_quality, self.quality * factor)
        elif frame_seconds < 0.6 * self.target:
            self.quality = min(1.0, self.quality * self._increase)
        if self._quality_gauge is not None:
            self._quality_gauge.set(self.quality)
        return self.quality

    @property
    def over_budget_fraction(self) -> float:
        if self.frames_recorded == 0:
            return 0.0
        return self.frames_over_budget / self.frames_recorded

    def reset(self) -> None:
        self.quality = 1.0
        self.frames_over_budget = 0
        self.frames_recorded = 0
        if self._quality_gauge is not None:
            self._quality_gauge.set(self.quality)

    def to_wire(self) -> dict:
        """Serializable state for ``wt.pipeline_stats``."""
        return {
            "quality": self.quality,
            "budget": self.budget,
            "target": self.target,
            "frames_recorded": self.frames_recorded,
            "frames_over_budget": self.frames_over_budget,
            "over_budget_fraction": self.over_budget_fraction,
        }


#: The degradation ladder, mildest first.  Each rung overrides the
#: subscriber's negotiated (encoding, decimate) pair; deltas are always
#: on for v2 subscribers and are not a rung (they cost nothing when the
#: scene churns, everything helps when it doesn't).
DEGRADATION_LADDER = (
    {"encoding": None, "decimate": 1},    # 0: as negotiated (full fidelity)
    {"encoding": "q16", "decimate": 1},   # 1: quantize to 6 bytes/point
    {"encoding": "q16", "decimate": 2},   # 2: + every 2nd point
    {"encoding": "q16", "decimate": 4},   # 3: + every 4th point
)


class DegradationPolicy:
    """Throughput-driven ladder over wire encodings for one subscriber.

    Feed it observations — ``note_send(nbytes, seconds)`` from the
    server's post-send hook and/or ``note_reported(bytes_per_second)``
    from the client's own goodput estimate — and read ``level`` /
    :meth:`plan`.  An EWMA smooths the signal; hysteresis (distinct
    escalate/recover thresholds plus a hold-down count) keeps the ladder
    from flapping at a boundary.

    The thresholds default to the paper's regime: escalate when measured
    throughput cannot carry the recent frame size at the 8 fps target,
    recover only when it could at twice that rate.
    """

    def __init__(
        self,
        *,
        target_fps: float = 8.0,
        alpha: float = 0.3,
        recover_margin: float = 2.0,
        hold_frames: int = 4,
    ) -> None:
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        if recover_margin < 1.0:
            raise ValueError("recover_margin must be >= 1")
        self.target_fps = float(target_fps)
        self._alpha = float(alpha)
        self._recover_margin = float(recover_margin)
        self._hold_frames = int(hold_frames)
        self.level = 0
        self.throughput = 0.0  # EWMA bytes/second, 0 = no signal yet
        self.frame_bytes = 0.0  # EWMA bytes/frame actually sent
        self.escalations = 0
        self.recoveries = 0
        self._hold = 0
        self._level_gauge = None
        self._escalations_counter = None

    def bind_registry(self, registry, prefix: str = "net.degradation"):
        """Mirror ladder state into a metrics registry (``net.*``)."""
        self._level_gauge = registry.gauge(f"{prefix}.level")
        self._escalations_counter = registry.counter(f"{prefix}.escalations")
        self._level_gauge.set(float(self.level))
        return self

    def _ewma(self, current: float, sample: float) -> float:
        if current == 0.0:
            return sample
        return (1.0 - self._alpha) * current + self._alpha * sample

    def note_send(self, nbytes: int, seconds: float) -> None:
        """One response left the server: nbytes over seconds of socket time."""
        if nbytes <= 0:
            return
        self.frame_bytes = self._ewma(self.frame_bytes, float(nbytes))
        if seconds > 0:
            self.note_reported(nbytes / seconds)
        else:
            self._evaluate()

    def note_reported(self, bytes_per_second: float) -> None:
        """Client-measured goodput (the receive side of the same wire)."""
        if bytes_per_second <= 0:
            return
        self.throughput = self._ewma(self.throughput, float(bytes_per_second))
        self._evaluate()

    def _evaluate(self) -> None:
        if self.throughput <= 0.0 or self.frame_bytes <= 0.0:
            return
        needed = self.frame_bytes * self.target_fps
        if self._hold > 0:
            self._hold -= 1
            return
        if self.throughput < needed and self.level < len(DEGRADATION_LADDER) - 1:
            self.level += 1
            self.escalations += 1
            self._hold = self._hold_frames
            if self._escalations_counter is not None:
                self._escalations_counter.inc()
        elif (
            self.throughput > needed * self._recover_margin and self.level > 0
        ):
            self.level -= 1
            self.recoveries += 1
            self._hold = self._hold_frames
        if self._level_gauge is not None:
            self._level_gauge.set(float(self.level))

    def plan(self, encoding: str, decimate: int) -> tuple[str, int]:
        """Apply the current rung to a subscriber's negotiated settings.

        Never *upgrades*: a client that asked for q16 keeps q16 at rung
        0, and a client's own decimation is kept if coarser than the
        rung's.
        """
        rung = DEGRADATION_LADDER[self.level]
        if encoding == "v1" and rung["encoding"] is not None:
            encoding = rung["encoding"]
        return encoding, max(int(decimate), int(rung["decimate"]))

    def to_wire(self) -> dict:
        """Serializable state for ``wt.subscribe`` responses and stats."""
        rung = DEGRADATION_LADDER[self.level]
        return {
            "level": self.level,
            "encoding": rung["encoding"],
            "decimate": rung["decimate"],
            "throughput": self.throughput,
            "frame_bytes": self.frame_bytes,
            "escalations": self.escalations,
            "recoveries": self.recoveries,
        }
