"""Frame-budget governor: trading richness for frame rate.

Section 1.2: "a tradeoff must be made between a rich environment and
frame rate", with a hard 1/8 s ceiling and a 10 fps target.  The governor
watches measured frame times and adjusts a *quality* scalar that the
compute engine applies to path lengths, keeping the whole cycle inside
budget as the user piles on rakes — and restoring quality when load
drops.

The governor lives on the frame pipeline's *producer* thread, not the
RPC path: it is fed the production cost of each published frame (load +
locate + integrate), so quality tracks what actually bounds the frame
period under figure 8's overlapped architecture, and a storm of cheap
cached ``wt.frame`` reads can no longer dilute the feedback signal.
"""

from __future__ import annotations

__all__ = ["FrameBudgetGovernor"]


class FrameBudgetGovernor:
    """Multiplicative-increase / multiplicative-decrease quality control.

    ``quality`` in ``[min_quality, 1]`` scales the tracer workload.  A
    frame over ``target`` (default 80% of the hard budget, leaving head-
    room for network and rendering) cuts quality; sustained headroom
    raises it gently.  Assuming the computation scales linearly with the
    particle count (the paper's Table 3 assumption), quality maps straight
    onto achievable particles.
    """

    def __init__(
        self,
        budget: float = 0.125,
        *,
        target_fraction: float = 0.8,
        min_quality: float = 0.05,
        decrease: float = 0.7,
        increase: float = 1.05,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        if not (0.0 < target_fraction <= 1.0):
            raise ValueError("target_fraction must be in (0, 1]")
        if not (0.0 < min_quality <= 1.0):
            raise ValueError("min_quality must be in (0, 1]")
        if not (0.0 < decrease < 1.0 < increase):
            raise ValueError("need decrease < 1 < increase")
        self.budget = float(budget)
        self.target = float(budget * target_fraction)
        self.min_quality = float(min_quality)
        self._decrease = float(decrease)
        self._increase = float(increase)
        self.quality = 1.0
        self.frames_over_budget = 0
        self.frames_recorded = 0
        self._quality_gauge = None
        self._recorded_counter = None
        self._over_budget_counter = None

    def bind_registry(self, registry) -> "FrameBudgetGovernor":
        """Mirror governor state into a metrics registry (``governor.*``).

        Every :meth:`record` thereafter updates the ``governor.quality``
        gauge and the recorded / over-budget counters, so the feedback
        loop is visible through ``wt.metrics`` without a bespoke RPC.
        """
        self._quality_gauge = registry.gauge("governor.quality")
        self._recorded_counter = registry.counter("governor.frames_recorded")
        self._over_budget_counter = registry.counter("governor.frames_over_budget")
        self._quality_gauge.set(self.quality)
        return self

    def record(self, frame_seconds: float) -> float:
        """Feed one measured frame time; returns the updated quality."""
        if frame_seconds < 0:
            raise ValueError("frame time must be non-negative")
        self.frames_recorded += 1
        if self._recorded_counter is not None:
            self._recorded_counter.inc()
        if frame_seconds > self.budget:
            self.frames_over_budget += 1
            if self._over_budget_counter is not None:
                self._over_budget_counter.inc()
        if frame_seconds > self.target:
            # Scale down proportionally to the overshoot, bounded by the
            # configured decrease factor.
            factor = max(self._decrease, self.target / frame_seconds)
            self.quality = max(self.min_quality, self.quality * factor)
        elif frame_seconds < 0.6 * self.target:
            self.quality = min(1.0, self.quality * self._increase)
        if self._quality_gauge is not None:
            self._quality_gauge.set(self.quality)
        return self.quality

    @property
    def over_budget_fraction(self) -> float:
        if self.frames_recorded == 0:
            return 0.0
        return self.frames_over_budget / self.frames_recorded

    def reset(self) -> None:
        self.quality = 1.0
        self.frames_over_budget = 0
        self.frames_recorded = 0
        if self._quality_gauge is not None:
            self._quality_gauge.set(self.quality)

    def to_wire(self) -> dict:
        """Serializable state for ``wt.pipeline_stats``."""
        return {
            "quality": self.quality,
            "budget": self.budget,
            "target": self.target,
            "frames_recorded": self.frames_recorded,
            "frames_over_budget": self.frames_over_budget,
            "over_budget_fraction": self.over_budget_fraction,
        }
