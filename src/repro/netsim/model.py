"""Analytic network models — the accounting behind Table 1.

The paper ships each path vertex as three 4-byte floats: "the transfer of
12 bytes per point in each array" (section 5.1), having rejected remote
screen-space projection because stereo would need two projections
(16 bytes/point).  Table 1 then tabulates the bandwidth needed to sustain
ten frames per second; the paper's megabyte is binary (2^20 bytes), which
is how 120,000 bytes * 10/s comes out at 1.144 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "NetworkModel",
    "BYTES_PER_POINT",
    "BYTES_PER_POINT_QUANTIZED",
    "ULTRANET_RATED",
    "ULTRANET_VME",
    "ULTRANET_ACTUAL",
    "HIPPI",
    "ETHERNET_10",
    "bytes_per_frame",
    "required_bandwidth_mbps",
    "max_particles_for_bandwidth",
    "table1_rows",
]

MB = float(1 << 20)  # the paper's (binary) megabyte

#: Bytes shipped per path vertex: three IEEE float32 components.
BYTES_PER_POINT = 12

#: Bytes per point if the remote projected to stereo screen space instead
#: (two projections x two 4-byte coords) — the alternative section 5.1
#: rejects.
BYTES_PER_POINT_STEREO_PROJECTED = 16

#: Bytes per point under the v2 quantized encodings (three int16 fixed-
#: point components, or three IEEE float16) — half the paper's 12
#: (docs/network.md).  The q16 per-rake scale/offset header (24 bytes) is
#: amortized across the rake's points and ignored here.
BYTES_PER_POINT_QUANTIZED = 6


@dataclass(frozen=True)
class NetworkModel:
    """A network characterized by bandwidth and per-message latency."""

    name: str
    bandwidth: float  # bytes/second
    latency: float = 0.0  # seconds per message

    def transfer_time(self, nbytes: int) -> float:
        """Wall-clock seconds to move ``nbytes`` one way."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency + nbytes / self.bandwidth

    def sustainable_fps(self, nbytes_per_frame: int) -> float:
        """Frame rate this network alone can sustain for a given payload."""
        t = self.transfer_time(nbytes_per_frame)
        return 1.0 / t if t > 0 else float("inf")

    def supports(self, n_particles: int, fps: float = 10.0) -> bool:
        """Can this network carry ``n_particles`` at ``fps``? (Table 1 test)"""
        return self.sustainable_fps(bytes_per_frame(n_particles)) >= fps


# The paper's network tiers (section 5.1).
ULTRANET_RATED = NetworkModel("UltraNet (rated)", 100.0 * MB)
ULTRANET_VME = NetworkModel("UltraNet via SGI VME interface", 13.0 * MB)
ULTRANET_ACTUAL = NetworkModel("UltraNet (measured, 1992 software)", 1.0 * MB)
HIPPI = NetworkModel("HIPPI", 100.0 * MB)
ETHERNET_10 = NetworkModel("10 Mb/s Ethernet", 10e6 / 8.0)


def bytes_per_frame(n_particles: int, bytes_per_point: int = BYTES_PER_POINT) -> int:
    """Bytes transferred per visualization update for ``n_particles``."""
    if n_particles < 0:
        raise ValueError("particle count must be non-negative")
    return n_particles * bytes_per_point


def required_bandwidth_mbps(
    n_particles: int, fps: float = 10.0, bytes_per_point: int = BYTES_PER_POINT
) -> float:
    """Bandwidth (binary MB/s) needed for ``n_particles`` at ``fps``.

    Table 1's third column: 10,000 particles at 10 fps -> 1.144 MB/s.
    """
    if fps <= 0:
        raise ValueError("fps must be positive")
    return bytes_per_frame(n_particles, bytes_per_point) * fps / MB


def max_particles_for_bandwidth(
    bandwidth_bytes: float, fps: float = 10.0, bytes_per_point: int = BYTES_PER_POINT
) -> int:
    """Largest particle count a given bandwidth sustains at ``fps``."""
    if fps <= 0:
        raise ValueError("fps must be positive")
    return int(bandwidth_bytes / (fps * bytes_per_point))


def table1_rows(
    particle_counts=(10_000, 50_000, 100_000), fps: float = 10.0
) -> list[dict]:
    """Regenerate Table 1: particle count, bytes/frame, required MB/s."""
    return [
        {
            "particles": n,
            "bytes_transferred": bytes_per_frame(n),
            "required_mbps": required_bandwidth_mbps(n, fps),
        }
        for n in particle_counts
    ]
