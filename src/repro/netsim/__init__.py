"""Network performance models and throttled channels.

The paper's UltraNet was "rated at 100 megabytes/second, but the UltraNet
VME interface to the SGI workstation limits the bandwidth to 13
megabytes/second...  the actual network performance is only 1
megabyte/second due to software bugs and the lack of a HIPPI interface"
(section 5.1).  We obviously cannot ship an UltraNet; instead
:class:`~repro.netsim.channel.ThrottledChannel` imposes a chosen
bandwidth/latency model on a real byte stream, making frame timings over
loopback reproduce the paper's network-constrained regimes, and
:mod:`~repro.netsim.model` holds the analytic accounting behind Table 1.
"""

from repro.netsim.model import (
    BYTES_PER_POINT,
    BYTES_PER_POINT_QUANTIZED,
    ETHERNET_10,
    HIPPI,
    ULTRANET_ACTUAL,
    ULTRANET_RATED,
    ULTRANET_VME,
    NetworkModel,
    bytes_per_frame,
    max_particles_for_bandwidth,
    required_bandwidth_mbps,
    table1_rows,
)
from repro.netsim.channel import BandwidthSchedule, ThrottledChannel, VirtualClock
from repro.netsim.faults import FaultPlan, FaultStats, FaultyChannel
from repro.netsim.process import ProcessFaultStats, ProcessFaults

__all__ = [
    "BYTES_PER_POINT",
    "BYTES_PER_POINT_QUANTIZED",
    "BandwidthSchedule",
    "FaultPlan",
    "FaultStats",
    "FaultyChannel",
    "NetworkModel",
    "ProcessFaultStats",
    "ProcessFaults",
    "ULTRANET_RATED",
    "ULTRANET_VME",
    "ULTRANET_ACTUAL",
    "HIPPI",
    "ETHERNET_10",
    "bytes_per_frame",
    "required_bandwidth_mbps",
    "max_particles_for_bandwidth",
    "table1_rows",
    "ThrottledChannel",
    "VirtualClock",
]
