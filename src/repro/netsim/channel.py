"""Throttled channels: impose a network model on a real byte stream.

A :class:`ThrottledChannel` wraps a :class:`~repro.dlib.transport.Stream`
and pads every send/recv with the delay the modeled network would have
taken, so an end-to-end windtunnel frame over loopback exhibits the same
network-bound behaviour the paper saw on the UltraNet (1 MB/s measured,
13 MB/s expected — section 5.1).

For fast deterministic tests a :class:`VirtualClock` can stand in for real
sleeping: delays are then accumulated rather than slept, and the tests
assert on the modeled time.
"""

from __future__ import annotations

import time

from repro.dlib.transport import Stream
from repro.netsim.model import NetworkModel

__all__ = ["BandwidthSchedule", "VirtualClock", "ThrottledChannel"]


class BandwidthSchedule:
    """Piecewise-constant bandwidth over elapsed channel time.

    ``steps`` is a sequence of ``(start_second, bytes_per_second)`` pairs;
    the bandwidth in force at time ``t`` is the last step whose start is
    ``<= t``.  Wrapped around a :class:`ThrottledChannel` this *shapes*
    the link — e.g. a healthy 13 MB/s UltraNet degrading to its measured
    1 MB/s mid-session — which is what drives the server's adaptive
    degradation ladder in tests and benchmarks (docs/network.md).
    """

    def __init__(self, steps) -> None:
        steps = [(float(t), float(bps)) for t, bps in steps]
        if not steps:
            raise ValueError("schedule needs at least one step")
        if any(bps <= 0 for _, bps in steps):
            raise ValueError("bandwidth must be positive")
        steps.sort(key=lambda s: s[0])
        if steps[0][0] != 0.0:
            raise ValueError("the first step must start at t=0")
        self.steps = steps

    def bandwidth_at(self, t: float) -> float:
        """Bytes/second in force at elapsed time ``t``."""
        current = self.steps[0][1]
        for start, bps in self.steps:
            if start > t:
                break
            current = bps
        return current


class VirtualClock:
    """Accumulates modeled delays instead of sleeping.

    ``now`` is the modeled time in seconds.  Inject into a
    :class:`ThrottledChannel` to make throttling free at test time while
    keeping the arithmetic observable.
    """

    def __init__(self) -> None:
        self.now = 0.0

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.now += seconds


class ThrottledChannel:
    """A framed stream with modeled bandwidth and latency.

    Duck-types the :class:`~repro.dlib.transport.Stream` interface so
    :class:`~repro.dlib.client.DlibClient` can run over it unchanged.
    Throttling is applied on this endpoint for both directions (the model
    covers the whole link, and one endpoint sleeping is equivalent for a
    request/response protocol).
    """

    def __init__(
        self,
        stream: Stream,
        model: NetworkModel,
        *,
        clock: VirtualClock | None = None,
        schedule: BandwidthSchedule | None = None,
        registry=None,
    ) -> None:
        self._stream = stream
        self.model = model
        self._clock = clock
        #: Optional bandwidth shaping: when set, the schedule's bandwidth
        #: (at elapsed channel time) replaces the model's constant rate;
        #: the model still contributes its per-message latency.
        self.schedule = schedule
        self._t0 = time.monotonic()
        self.modeled_delay_total = 0.0
        # Optional MetricsRegistry: modeled delays become observable next
        # to the real timings (netsim.* metrics).
        self._delay_hist = (
            registry.histogram("netsim.modeled_delay_seconds") if registry else None
        )
        self._throttled_bytes = (
            registry.counter("netsim.throttled_bytes") if registry else None
        )

    # -- Stream interface ----------------------------------------------------

    @property
    def bytes_sent(self) -> int:
        return self._stream.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._stream.bytes_received

    @property
    def closed(self) -> bool:
        return self._stream.closed

    def fileno(self) -> int:
        return self._stream.fileno()

    def settimeout(self, seconds: float | None) -> None:
        if hasattr(self._stream, "settimeout"):
            self._stream.settimeout(seconds)

    def send_raw(self, data: bytes) -> None:
        """Unframed passthrough (fault injection); still pays the model."""
        self._delay(len(data))
        self._stream.send_raw(data)

    def elapsed(self) -> float:
        """Elapsed channel time: virtual when a clock is injected."""
        if self._clock is not None:
            return self._clock.now
        return time.monotonic() - self._t0

    def _delay(self, nbytes: int) -> None:
        if self.schedule is not None:
            bandwidth = self.schedule.bandwidth_at(self.elapsed())
            d = self.model.latency + nbytes / bandwidth
        else:
            d = self.model.transfer_time(nbytes)
        self.modeled_delay_total += d
        if self._delay_hist is not None:
            self._delay_hist.observe(d)
            self._throttled_bytes.inc(nbytes)
        if self._clock is not None:
            self._clock.sleep(d)
        elif d > 0:
            time.sleep(d)

    def send(self, payload: bytes) -> None:
        self._delay(len(payload))
        self._stream.send(payload)

    def recv(self) -> bytes:
        payload = self._stream.recv()
        self._delay(len(payload))
        return payload

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "ThrottledChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
