"""Deterministic fault injection for stream transports.

The paper's UltraNet delivered 1 MB/s of its rated 13 MB/s "due to
software bugs" (section 5.1) — the production network was itself the
adversary.  :class:`FaultyChannel` wraps any Stream-shaped transport and
injects that adversary on demand: silent frame drops, stalls, single-byte
corruption, reorder-free duplicate frames, and a forced mid-frame
disconnect that emits a naked frame prefix before severing the link.

Everything is driven by one seeded PRNG inside a :class:`FaultPlan`, so a
failing test reproduces byte-for-byte from its seed.  The wrapper
duck-types :class:`~repro.dlib.transport.Stream` and composes with
:class:`~repro.netsim.channel.ThrottledChannel` in either order, so a
test can run the paper's degraded-bandwidth regime *with* faults:

    raw = connect_tcp(host, port)
    slow = ThrottledChannel(raw, ULTRANET_ACTUAL)
    flaky = FaultyChannel(slow, FaultPlan(seed=7, drop_rate=0.05))
    client = DlibClient(stream=flaky, ...)
"""

from __future__ import annotations

import random
import struct
import time
from dataclasses import dataclass, field

from repro.netsim.channel import VirtualClock

__all__ = ["FaultPlan", "FaultStats", "FaultyChannel"]

_LEN = struct.Struct("<I")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of transport faults.

    Rates are per-``send`` probabilities in ``[0, 1]`` drawn from one
    ``random.Random(seed)``, so the full fault sequence is a pure
    function of the seed and the call sequence.  ``disconnect_after_sends``
    forces exactly one mid-frame disconnect on the Nth send (1-based):
    the channel emits ``disconnect_partial_bytes`` of the frame — a naked
    header prefix — then closes the underlying stream and raises
    ``ConnectionError``, modeling a peer dying mid-write.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.02
    disconnect_after_sends: int | None = None
    disconnect_partial_bytes: int = 2

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "corrupt_rate", "stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be non-negative")
        if self.disconnect_after_sends is not None and self.disconnect_after_sends < 1:
            raise ValueError("disconnect_after_sends counts from 1")
        if self.disconnect_partial_bytes < 0:
            raise ValueError("disconnect_partial_bytes must be non-negative")


@dataclass
class FaultStats:
    """Counters of every fault the channel actually injected."""

    sends: int = 0
    recvs: int = 0
    drops: int = 0
    duplicates: int = 0
    corruptions: int = 0
    stalls: int = 0
    disconnects: int = 0
    stalled_seconds: float = field(default=0.0)

    def total_faults(self) -> int:
        """Injected faults of all kinds (not counting clean traffic)."""
        return (
            self.drops
            + self.duplicates
            + self.corruptions
            + self.stalls
            + self.disconnects
        )


class FaultyChannel:
    """A Stream wrapper that injects the faults of a :class:`FaultPlan`.

    Duck-types :class:`~repro.dlib.transport.Stream`, so a
    :class:`~repro.dlib.client.DlibClient` runs over it unchanged.  Pass
    a :class:`~repro.netsim.channel.VirtualClock` to make stalls free at
    test time (accumulated, not slept).
    """

    def __init__(
        self,
        stream,
        plan: FaultPlan,
        *,
        clock: VirtualClock | None = None,
        registry=None,
    ) -> None:
        self._stream = stream
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed)
        self._clock = clock
        self._disconnected = False
        # Optional MetricsRegistry: injected faults land in the same
        # registry the server reports, so a soak run reconciles observed
        # losses against scheduled ones from one snapshot.
        self._counters = (
            {
                name: registry.counter(f"faults.{name}")
                for name in (
                    "sends",
                    "recvs",
                    "drops",
                    "duplicates",
                    "corruptions",
                    "stalls",
                    "disconnects",
                )
            }
            if registry is not None
            else None
        )

    def _record(self, name: str) -> None:
        if self._counters is not None:
            self._counters[name].inc()

    # -- Stream interface ----------------------------------------------------

    @property
    def bytes_sent(self) -> int:
        return self._stream.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._stream.bytes_received

    @property
    def closed(self) -> bool:
        return self._stream.closed

    def fileno(self) -> int:
        return self._stream.fileno()

    def settimeout(self, seconds: float | None) -> None:
        if hasattr(self._stream, "settimeout"):
            self._stream.settimeout(seconds)

    def send(self, payload: bytes) -> None:
        """Send one framed message, subject to the fault plan."""
        plan, rng = self.plan, self._rng
        self.stats.sends += 1
        self._record("sends")
        if (
            plan.disconnect_after_sends is not None
            and not self._disconnected
            and self.stats.sends >= plan.disconnect_after_sends
        ):
            self._inject_disconnect(payload)
        if plan.stall_rate and rng.random() < plan.stall_rate:
            self.stats.stalls += 1
            self._record("stalls")
            self._stall(plan.stall_seconds)
        if plan.drop_rate and rng.random() < plan.drop_rate:
            self.stats.drops += 1
            self._record("drops")
            return  # the frame silently vanishes in the network
        data = payload
        if plan.corrupt_rate and payload and rng.random() < plan.corrupt_rate:
            corrupted = bytearray(payload)
            corrupted[rng.randrange(len(corrupted))] ^= 0xFF
            data = bytes(corrupted)
            self.stats.corruptions += 1
            self._record("corruptions")
        self._stream.send(data)
        if plan.duplicate_rate and rng.random() < plan.duplicate_rate:
            self.stats.duplicates += 1
            self._record("duplicates")
            self._stream.send(data)

    def recv(self) -> bytes:
        self.stats.recvs += 1
        self._record("recvs")
        return self._stream.recv()

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "FaultyChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- fault internals -----------------------------------------------------

    def _stall(self, seconds: float) -> None:
        self.stats.stalled_seconds += seconds
        if self._clock is not None:
            self._clock.sleep(seconds)
        elif seconds > 0:
            time.sleep(seconds)

    def _inject_disconnect(self, payload: bytes) -> None:
        """Emit a naked prefix of the frame, sever the link, raise."""
        self._disconnected = True
        self.stats.disconnects += 1
        self._record("disconnects")
        frame = _LEN.pack(len(payload)) + bytes(payload)
        cut = min(self.plan.disconnect_partial_bytes, len(frame))
        if cut and hasattr(self._stream, "send_raw"):
            try:
                self._stream.send_raw(frame[:cut])
            except (ConnectionError, OSError):
                pass
        self._stream.close()
        raise ConnectionError("injected mid-frame disconnect")
