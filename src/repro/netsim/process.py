"""Process-level fault injection: crash and hang, on a seeded schedule.

:mod:`repro.netsim.faults` attacks the *wire*; this module attacks the
*process* — the failure domain the session gateway exists to contain.
Two faults, matching the supervisor's failure model (docs/operations.md):

* **kill** — SIGKILL, the uncatchable crash.  The victim gets no chance
  to flush, say goodbye, or release anything; whatever recovery works
  against SIGKILL works against segfaults and OOM kills too.
* **hang** — wedge the victim's service loop via its ``wt.chaos_hang``
  procedure (servers opt in with ``allow_chaos=True``).  The process
  stays alive and connectable, which is exactly what makes hangs nastier
  than crashes: only a liveness *deadline* can tell a wedged worker from
  a busy one.

Victim choice is seeded (:meth:`ProcessFaults.choose`) so a chaos run
reproduces from its seed, and injections are counted both locally
(:attr:`stats`) and in an optional metrics registry (``faults.kills`` /
``faults.hangs``) so tests reconcile injected faults against the
gateway's observed ``gateway.*`` recovery counters.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass

__all__ = ["ProcessFaultStats", "ProcessFaults"]


@dataclass
class ProcessFaultStats:
    """What was actually injected."""

    kills: int = 0
    hangs: int = 0

    def total_faults(self) -> int:
        return self.kills + self.hangs


class ProcessFaults:
    """Seeded crash/hang injection against worker processes.

    Parameters
    ----------
    seed
        Drives :meth:`choose`; a fixed seed fixes the victim sequence.
    registry
        Optional :class:`~repro.obs.registry.MetricsRegistry` recording
        ``faults.kills`` and ``faults.hangs``.
    """

    def __init__(self, seed: int = 0, *, registry=None) -> None:
        self._rng = random.Random(seed)
        self.stats = ProcessFaultStats()
        self._counters = (
            {
                "kills": registry.counter("faults.kills"),
                "hangs": registry.counter("faults.hangs"),
            }
            if registry is not None
            else None
        )

    def _record(self, name: str) -> None:
        if self._counters is not None:
            self._counters[name].inc()

    def choose(self, victims: list):
        """Pick the next victim from ``victims`` (seeded, uniform)."""
        if not victims:
            raise ValueError("no victims to choose from")
        return victims[self._rng.randrange(len(victims))]

    def kill(self, process) -> int:
        """SIGKILL ``process`` (anything with a ``pid``); returns the pid.

        Sent via :func:`os.kill` rather than any cooperative API so the
        victim's own cleanup handlers demonstrably never run.
        """
        pid = int(getattr(process, "pid", process))
        os.kill(pid, signal.SIGKILL)
        self.stats.kills += 1
        self._record("kills")
        return pid

    def hang(self, address: tuple[str, int], seconds: float) -> None:
        """Wedge the service loop of the server at ``address``.

        Fire-and-forget: ships a ``wt.chaos_hang`` call and abandons the
        response at a tiny deadline (the whole point is that the server
        will not answer).  Raises ``ConnectionError`` if the server is
        not accepting connections at all — a dead process cannot hang.
        """
        from repro.dlib.client import DlibClient
        from repro.dlib.protocol import DlibTimeoutError

        host, port = address
        client = DlibClient(host, port, timeout=5.0, call_timeout=0.05)
        try:
            client.call_once("wt.chaos_hang", float(seconds))
        except DlibTimeoutError:
            pass  # expected: the server is now wedged, not answering
        finally:
            try:
                client.close()
            except OSError:
                pass
        self.stats.hangs += 1
        self._record("hangs")
