"""Unit tests for the sweep manifest layer (repro.sweep.manifest)."""

import json

import pytest

from repro.sweep import ScenarioError, SweepManifest, load_manifest
from repro.sweep.manifest import AXIS_KEYS, RakeSpec


def minimal(**over):
    raw = {"name": "t", "axes": {"encoding": ["v1", "q16"]}}
    raw.update(over)
    return raw


class TestExpansion:
    def test_cartesian_product(self):
        m = SweepManifest.from_dict(
            minimal(axes={"encoding": ["v1", "q16"], "fused": [True, False],
                          "timesteps": [2, 3]})
        )
        assert len(m.expand()) == 8

    def test_empty_axes_is_one_scenario(self):
        m = SweepManifest.from_dict({"name": "t"})
        scenarios = m.expand()
        assert len(scenarios) == 1
        assert scenarios[0].encoding == "v1"

    def test_base_overrides_defaults(self):
        m = SweepManifest.from_dict(minimal(base={"frames": 7, "decimate": 2}))
        for s in m.expand():
            assert s.frames == 7
            assert s.decimate == 2

    def test_duplicate_axis_values_collapse(self):
        m = SweepManifest.from_dict(minimal(axes={"encoding": ["v1", "v1"]}))
        assert len(m.expand()) == 1

    def test_axis_order_does_not_change_ids(self):
        a = SweepManifest.from_dict(
            minimal(axes={"encoding": ["v1", "q16"], "fused": [True]})
        )
        b = SweepManifest.from_dict(
            minimal(axes={"fused": [True], "encoding": ["q16", "v1"]})
        )
        assert {s.scenario_id for s in a.expand()} == {
            s.scenario_id for s in b.expand()
        }


class TestScenarioIdentity:
    def test_id_is_content_addressed(self):
        m = SweepManifest.from_dict(minimal())
        s1, s2 = m.expand()
        assert s1.scenario_id != s2.scenario_id
        again = SweepManifest.from_dict(minimal()).expand()
        assert [s.scenario_id for s in again] == [
            s.scenario_id for s in (s1, s2)
        ]

    def test_params_json_round_trip(self):
        (s,) = SweepManifest.from_dict({"name": "t"}).expand()
        blob = json.dumps(s.params(), sort_keys=True)
        assert json.loads(blob) == s.params()

    def test_label_mentions_faults_only_when_active(self):
        m = SweepManifest.from_dict(
            minimal(
                axes={"fault_profile": ["none", "bad"]},
                faults={"bad": {"drop_rate": 0.5}},
            )
        )
        labels = [s.label() for s in m.expand()]
        assert sum("faults:bad" in label for label in labels) == 1


class TestValidationErrors:
    """Every rejection is a ScenarioError naming the offending key."""

    @pytest.mark.parametrize(
        "raw, key",
        [
            ({"name": "", "axes": {}}, "name"),
            ({"bogus": 1}, "bogus"),
            ({"axes": {"nope": [1]}}, "axes.nope"),
            ({"axes": {"encoding": []}}, "axes.encoding"),
            ({"axes": {"encoding": "v1"}}, "axes.encoding"),
            ({"base": {"nope": 1}}, "base.nope"),
            ({"base": {"frames": 0}}, "base.frames"),
            ({"base": {"shape": [4, 4]}}, "base.shape"),
            ({"base": {"shape": [4, 4, 1]}}, "base.shape"),
            ({"base": {"shape": [4000, 4000, 4000]}}, "base.shape"),
            ({"base": {"backend": "gpu"}}, "base.backend"),
            ({"base": {"encoding": "v9"}}, "base.encoding"),
            ({"base": {"quality": 0.0}}, "base.quality"),
            ({"base": {"quality": 1.5}}, "base.quality"),
            ({"base": {"fused": 1}}, "base.fused"),
            ({"base": {"time_speed": 0}}, "base.time_speed"),
            ({"base": {"rakes": "ghost"}}, "base.rakes"),
            ({"base": {"fault_profile": "ghost"}}, "base.fault_profile"),
            ({"axes": {"timesteps": [2, -1]}}, "axes.timesteps[1]"),
            ({"layouts": {"l": []}}, "layouts.l"),
            ({"layouts": {"l": [{"a": [0, 0, 0]}]}}, "layouts.l[0].b"),
            (
                {"layouts": {"l": [{"a": [0, 0, 0], "b": [2, 0, 0]}]}},
                "layouts.l[0].b",
            ),
            (
                {"layouts": {"l": [{"a": [0, 0, 0], "b": [1, 1, 1],
                                    "seeds": 0}]}},
                "layouts.l[0].seeds",
            ),
            (
                {"layouts": {"l": [{"a": [0, 0, 0], "b": [1, 1, 1],
                                    "kind": "vortex"}]}},
                "layouts.l[0].kind",
            ),
            ({"faults": {"none": {}}}, "faults.none"),
            ({"faults": {"f": {"drop_rate": 2.0}}}, "faults.f.drop_rate"),
            ({"faults": {"f": {"bogus": 1}}}, "faults.f.bogus"),
            ({"faults": {"f": {"seed": "x"}}}, "faults.f.seed"),
        ],
    )
    def test_rejection_names_the_key(self, raw, key):
        raw.setdefault("name", "t")
        with pytest.raises(ScenarioError) as exc_info:
            SweepManifest.from_dict(raw)
        assert exc_info.value.key == key

    def test_grid_too_large_rejected(self):
        with pytest.raises(ScenarioError) as exc_info:
            SweepManifest.from_dict(
                {"name": "t", "axes": {"timesteps": list(range(1, 100)),
                                       "frames": None}}
            )
        # frames is not an axis key -> named rejection, not a blowup
        assert exc_info.value.key == "axes.frames"

    def test_scenario_cap_enforced(self):
        axes = {
            "timesteps": list(range(1, 17)),
            "seeds_per_rake": list(range(1, 17)),
            "streamline_steps": list(range(2, 19)),
        }
        with pytest.raises(ScenarioError) as exc_info:
            SweepManifest.from_dict({"name": "t", "axes": axes})
        assert exc_info.value.key == "axes"

    def test_bool_is_not_an_int(self):
        with pytest.raises(ScenarioError) as exc_info:
            SweepManifest.from_dict(minimal(base={"timesteps": True}))
        assert exc_info.value.key == "base.timesteps"


class TestDegenerateButLegal:
    def test_zero_length_rake_accepted(self):
        m = SweepManifest.from_dict(
            minimal(
                base={"rakes": "pt"},
                layouts={"pt": [{"a": [0.5, 0.5, 0.5], "b": [0.5, 0.5, 0.5],
                                 "seeds": 1}]},
            )
        )
        (spec,) = m.expand()[0].rakes
        assert spec.a == spec.b
        assert spec.seeds == 1

    def test_minimum_shape_accepted(self):
        m = SweepManifest.from_dict(minimal(base={"shape": [2, 2, 2]}))
        assert m.expand()[0].shape == (2, 2, 2)


class TestLoadManifest:
    def test_yaml_round_trip(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "m.yaml"
        path.write_text(
            "name: y\naxes:\n  encoding: [v1, f16]\n", encoding="utf-8"
        )
        m = load_manifest(path)
        assert len(m.expand()) == 2

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps({"name": "j", "axes": {"fused": [True, False]}}),
            encoding="utf-8",
        )
        assert len(load_manifest(path).expand()) == 2

    def test_missing_file_is_scenario_error(self, tmp_path):
        with pytest.raises(ScenarioError) as exc_info:
            load_manifest(tmp_path / "ghost.yaml")
        assert exc_info.value.key == "manifest"

    def test_bad_json_is_scenario_error(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_manifest(path)

    def test_bad_yaml_is_scenario_error(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "m.yaml"
        path.write_text("a: [unclosed", encoding="utf-8")
        with pytest.raises(ScenarioError, match="invalid YAML"):
            load_manifest(path)

    def test_example_smoke_manifest_expands_to_grid(self):
        pytest.importorskip("yaml")
        from pathlib import Path

        smoke = (Path(__file__).parent.parent / "examples" / "sweeps"
                 / "smoke.yaml")
        m = load_manifest(smoke)
        assert len(m.expand()) >= 8


class TestProvenance:
    def test_digest_tracks_content(self):
        a = SweepManifest.from_dict(minimal())
        b = SweepManifest.from_dict(minimal())
        c = SweepManifest.from_dict(minimal(base={"frames": 9}))
        assert a.digest == b.digest
        assert a.digest != c.digest

    def test_to_dict_omits_implicit_entries(self):
        m = SweepManifest.from_dict(minimal())
        d = m.to_dict()
        assert "none" not in d["faults"]
        assert d["axes"] == {"encoding": ["v1", "q16"]}

    def test_every_axis_key_has_a_default(self):
        from repro.sweep.manifest import _DEFAULTS

        for key in AXIS_KEYS:
            assert key in _DEFAULTS


def test_rakespec_to_dict_is_plain_data():
    spec = RakeSpec(a=(0.1, 0.2, 0.3), b=(0.9, 0.8, 0.7), seeds=5,
                    kind="streakline")
    assert spec.to_dict() == {
        "a": [0.1, 0.2, 0.3],
        "b": [0.9, 0.8, 0.7],
        "seeds": 5,
        "kind": "streakline",
    }
