"""Tests for multi-zone grids and cross-zone tracer integration."""

import numpy as np
import pytest

from repro.flow import MemoryDataset, RigidRotation, UniformFlow, sample_on_grid
from repro.grid import MultiZoneGrid, cartesian_grid
from repro.tracers.multizone import multizone_streamlines


def zone_dataset(lo, hi, field, shape=(9, 9, 5), n_times=1):
    grid = cartesian_grid(shape, lo=lo, hi=hi)
    vel = sample_on_grid(field, grid, np.arange(n_times) * 0.1, dtype=np.float64)
    return MemoryDataset(grid, vel, dt=0.1)


@pytest.fixture(scope="module")
def two_zone_uniform():
    """Two abutting boxes, uniform +x flow throughout."""
    f = UniformFlow([1.0, 0.0, 0.0])
    left = zone_dataset((0, 0, 0), (2, 2, 1), f)
    right = zone_dataset((2, 0, 0), (4, 2, 1), f)
    return [left, right]


class TestMultiZoneGrid:
    def test_locate_assigns_correct_zone(self, two_zone_uniform):
        mz = MultiZoneGrid([d.grid for d in two_zone_uniform])
        pts = np.array([[0.5, 1.0, 0.5], [3.5, 1.0, 0.5], [9.0, 9.0, 9.0]])
        zones, coords, found = mz.locate(pts)
        assert zones.tolist() == [0, 1, -1]
        assert found.tolist() == [True, True, False]

    def test_overlap_priority(self):
        """In overlapping regions, the earlier zone owns the point."""
        f = UniformFlow()
        a = zone_dataset((0, 0, 0), (2, 2, 1), f)
        b = zone_dataset((1, 0, 0), (3, 2, 1), f)
        mz = MultiZoneGrid([a.grid, b.grid])
        zone, _, found = mz.locate(np.array([1.5, 1.0, 0.5]))
        assert found and zone == 0

    def test_to_physical_roundtrip(self, two_zone_uniform):
        mz = MultiZoneGrid([d.grid for d in two_zone_uniform])
        pts = np.array([[0.7, 1.1, 0.4], [3.1, 0.6, 0.8]])
        zones, coords, found = mz.locate(pts)
        back = mz.to_physical(zones, coords)
        np.testing.assert_allclose(back, pts, atol=1e-8)

    def test_n_points(self, two_zone_uniform):
        mz = MultiZoneGrid([d.grid for d in two_zone_uniform])
        assert mz.n_points == 2 * 9 * 9 * 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiZoneGrid([])

    def test_rehome_moves_escapee(self, two_zone_uniform):
        mz = MultiZoneGrid([d.grid for d in two_zone_uniform])
        # Grid coords (9, 4, 2) in zone 0 is outside (max index 8) — the
        # physical point x=2.25 belongs to zone 1.
        zone_ids = np.array([0])
        coords = np.array([[9.0, 4.0, 2.0]])
        new_zone, new_coords, alive = mz.rehome(zone_ids, coords)
        assert alive[0]
        assert new_zone[0] == 1

    def test_rehome_kills_domain_escapee(self, two_zone_uniform):
        mz = MultiZoneGrid([d.grid for d in two_zone_uniform])
        zone_ids = np.array([1])
        coords = np.array([[20.0, 4.0, 2.0]])  # way past zone 1's far face
        _, _, alive = mz.rehome(zone_ids, coords)
        assert not alive[0]


class TestMultiZoneStreamlines:
    def test_crosses_zone_boundary_seamlessly(self, two_zone_uniform):
        seeds = np.array([[0.5, 1.0, 0.5]])
        res = multizone_streamlines(two_zone_uniform, 0, seeds, n_steps=60, dt=0.2)
        line = res.paths[0, : res.lengths[0]]
        # Straight +x line through both zones (uniform flow): y, z constant.
        np.testing.assert_allclose(line[:, 1], 1.0, atol=1e-8)
        np.testing.assert_allclose(line[:, 2], 0.5, atol=1e-8)
        assert np.all(np.diff(line[:, 0]) > 0)
        assert res.zones_visited(0) == [0, 1]
        assert line[-1, 0] > 2.5  # made it into zone 1

    def test_physical_spacing_continuous_across_boundary(self, two_zone_uniform):
        """No kink: step size in physical space is uniform through the hop."""
        seeds = np.array([[0.5, 1.0, 0.5]])
        res = multizone_streamlines(two_zone_uniform, 0, seeds, n_steps=40, dt=0.1)
        line = res.paths[0, : res.lengths[0]]
        steps = np.diff(line[:, 0])
        np.testing.assert_allclose(steps, steps[0], atol=1e-6)

    def test_dies_at_composite_boundary(self, two_zone_uniform):
        seeds = np.array([[3.5, 1.0, 0.5]])
        res = multizone_streamlines(two_zone_uniform, 0, seeds, n_steps=50, dt=0.2)
        assert res.lengths[0] < 51
        line = res.paths[0]
        # Frozen at the last in-domain position.
        np.testing.assert_allclose(line[res.lengths[0] - 1 :, 0], line[res.lengths[0] - 1, 0])
        assert line[res.lengths[0] - 1, 0] <= 4.0 + 1e-6

    def test_seed_outside_all_zones(self, two_zone_uniform):
        seeds = np.array([[99.0, 0.0, 0.0]])
        res = multizone_streamlines(two_zone_uniform, 0, seeds, n_steps=5)
        assert res.lengths[0] == 1
        assert res.zone_history[0, 0] == -1

    def test_mixed_fields_change_direction(self):
        """Each zone applies its own field: +x in zone 0, +y in zone 1."""
        left = zone_dataset((0, 0, 0), (2, 4, 1), UniformFlow([1.0, 0, 0]))
        right = zone_dataset((2, 0, 0), (4, 4, 1), UniformFlow([0.0, 1.0, 0]))
        seeds = np.array([[1.0, 1.0, 0.5]])
        res = multizone_streamlines([left, right], 0, seeds, n_steps=40, dt=0.2)
        line = res.paths[0, : res.lengths[0]]
        assert res.zones_visited(0) == [0, 1]
        # Once in zone 1, motion is +y while x stays ~constant.
        in_zone1 = res.zone_history[0, : res.lengths[0]] == 1
        z1 = line[in_zone1]
        assert len(z1) > 3
        assert z1[-1, 1] > z1[0, 1] + 0.5
        np.testing.assert_allclose(np.diff(z1[:, 0]), 0.0, atol=0.25)

    def test_rotation_across_zones_stays_circular(self):
        """A rotation spanning two zones keeps its radius through the hop."""
        rot = RigidRotation(omega=[0, 0, 1.0], center=[2.0, 2.0, 0.0])
        left = zone_dataset((0, 0, 0), (2, 4, 1), rot, shape=(17, 17, 3))
        right = zone_dataset((2, 0, 0), (4, 4, 1), rot, shape=(17, 17, 3))
        seeds = np.array([[1.0, 2.0, 0.5]])  # radius 1 around (2,2)
        res = multizone_streamlines([left, right], 0, seeds, n_steps=120, dt=0.05)
        line = res.paths[0, : res.lengths[0]]
        radii = np.linalg.norm(line[:, :2] - [2.0, 2.0], axis=1)
        np.testing.assert_allclose(radii, 1.0, atol=0.02)
        assert 1 in res.zones_visited(0) and 0 in res.zones_visited(0)

    def test_validation(self, two_zone_uniform):
        with pytest.raises(ValueError):
            multizone_streamlines([], 0, np.zeros((1, 3)))
        with pytest.raises(ValueError):
            multizone_streamlines(two_zone_uniform, 0, np.zeros((1, 2)))
        short = zone_dataset((0, 0, 0), (1, 1, 1), UniformFlow(), n_times=2)
        with pytest.raises(ValueError):
            multizone_streamlines([two_zone_uniform[0], short], 0, np.zeros((1, 3)))
