"""FaultyChannel: deterministic fault injection over real transports."""

import struct

import pytest

from repro.dlib import DlibClient, DlibServer, RetryPolicy
from repro.dlib.transport import connect_tcp, pipe_pair
from repro.netsim import (
    FaultPlan,
    FaultyChannel,
    NetworkModel,
    ThrottledChannel,
    VirtualClock,
)


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)

    def test_disconnect_counts_from_one(self):
        with pytest.raises(ValueError):
            FaultPlan(disconnect_after_sends=0)

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(stall_seconds=-1.0)


class TestDeterminism:
    def _run(self, seed):
        a, b = pipe_pair()
        chan = FaultyChannel(
            a,
            FaultPlan(seed=seed, drop_rate=0.3, duplicate_rate=0.2, corrupt_rate=0.2),
        )
        try:
            for i in range(40):
                chan.send(bytes([i]) * 8)
            return (
                chan.stats.drops,
                chan.stats.duplicates,
                chan.stats.corruptions,
            )
        finally:
            a.close()
            b.close()

    def test_same_seed_same_fault_sequence(self):
        assert self._run(7) == self._run(7)

    def test_different_seed_differs(self):
        outcomes = {self._run(s) for s in range(6)}
        assert len(outcomes) > 1

    def test_faults_actually_fire(self):
        drops, dups, corrupts = self._run(7)
        assert drops > 0 and dups > 0 and corrupts > 0


class TestFrameLevelFaults:
    def test_drop_means_peer_sees_nothing(self):
        a, b = pipe_pair()
        try:
            chan = FaultyChannel(a, FaultPlan(drop_rate=1.0))
            chan.send(b"vanishes")
            assert chan.stats.drops == 1
            # The peer got zero bytes — not even a header.
            assert a.bytes_sent == 0
        finally:
            a.close()
            b.close()

    def test_duplicate_emits_two_identical_frames(self):
        a, b = pipe_pair()
        try:
            chan = FaultyChannel(a, FaultPlan(duplicate_rate=1.0))
            chan.send(b"twice")
            assert b.recv() == b"twice"
            assert b.recv() == b"twice"
            assert chan.stats.duplicates == 1
        finally:
            a.close()
            b.close()

    def test_corruption_flips_exactly_one_byte(self):
        a, b = pipe_pair()
        try:
            chan = FaultyChannel(a, FaultPlan(seed=3, corrupt_rate=1.0))
            chan.send(b"\x00" * 16)
            got = b.recv()
            assert len(got) == 16
            assert sum(byte != 0 for byte in got) == 1
        finally:
            a.close()
            b.close()

    def test_forced_disconnect_emits_naked_prefix_then_raises(self):
        a, b = pipe_pair()
        try:
            chan = FaultyChannel(
                a,
                FaultPlan(disconnect_after_sends=2, disconnect_partial_bytes=2),
            )
            chan.send(b"first frame ok")
            assert b.recv() == b"first frame ok"
            with pytest.raises(ConnectionError):
                chan.send(b"never completes")
            assert chan.stats.disconnects == 1
            assert chan.closed
            # The victim saw 2 bytes of header and then EOF: a torn frame.
            with pytest.raises(ConnectionError):
                b.recv()
        finally:
            b.close()


class TestComposition:
    def test_faults_compose_with_throttling_and_virtual_clock(self):
        """The paper's degraded-UltraNet regime *with* faults, for free."""
        a, b = pipe_pair()
        clock = VirtualClock()
        model = NetworkModel("slow", bandwidth=1000.0)
        try:
            slow = ThrottledChannel(a, model, clock=clock)
            flaky = FaultyChannel(
                slow, FaultPlan(stall_rate=1.0, stall_seconds=0.5), clock=clock
            )
            flaky.send(b"x" * 500)
            assert b.recv() == b"x" * 500
            # Modeled: 0.5 s injected stall + 0.5 s of 1 kB/s transfer.
            assert clock.now == pytest.approx(1.0)
            assert flaky.stats.stalls == 1
        finally:
            a.close()
            b.close()


class TestAgainstRealServer:
    @pytest.fixture()
    def server(self):
        srv = DlibServer()
        srv.register("echo", lambda ctx, v: v)
        srv.start()
        yield srv
        srv.stop()

    def test_duplicate_calls_do_not_desync_the_client(self, server):
        """Stale responses from duplicated frames are skipped, not fatal."""
        raw = connect_tcp(*server.address)
        chan = FaultyChannel(raw, FaultPlan(duplicate_rate=1.0))
        with DlibClient(stream=chan) as c:
            for i in range(10):
                assert c.call("echo", i) == i
        assert chan.stats.duplicates == 10

    def test_corrupt_frames_cannot_kill_the_server(self, server):
        """A client spraying corrupted frames is contained to itself."""
        raw = connect_tcp(*server.address)
        chan = FaultyChannel(raw, FaultPlan(seed=11, corrupt_rate=1.0))
        client = DlibClient(stream=chan, call_timeout=0.5)
        for i in range(5):
            try:
                client.call_once("echo", i)
            except Exception:  # noqa: BLE001 - any outcome but a hang is fine
                break
        client.close()
        with DlibClient(*server.address) as clean:
            assert clean.call("echo", "alive") == "alive"

    def test_retry_reconnects_through_drops_and_disconnect(self, server):
        """Idempotent calls survive a lossy first channel via the factory."""
        channels = []

        def factory():
            raw = connect_tcp(*server.address)
            plan = (
                FaultPlan(seed=1, drop_rate=1.0, disconnect_after_sends=2)
                if not channels
                else FaultPlan()
            )
            chan = FaultyChannel(raw, plan)
            channels.append(chan)
            return chan

        client = DlibClient(
            stream_factory=factory,
            call_timeout=0.3,
            retry=RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0, seed=0),
            idempotent={"echo"},
        )
        try:
            assert client.call("echo", 42) == 42
            assert client.reconnects >= 1
            assert channels[0].stats.drops >= 1
        finally:
            client.close()
