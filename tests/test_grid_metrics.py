"""Tests for grid quality metrics."""

import numpy as np
import pytest

from repro.grid import CurvilinearGrid, cartesian_grid, cylindrical_grid
from repro.grid.metrics import (
    aspect_ratio,
    grid_report,
    jacobian_determinant,
    orthogonality,
)


class TestJacobianDeterminant:
    def test_cartesian_equals_spacing_product(self):
        g = cartesian_grid((5, 5, 5), hi=(4.0, 8.0, 12.0))
        det = jacobian_determinant(g)
        np.testing.assert_allclose(det, 1.0 * 2.0 * 3.0, atol=1e-12)

    def test_cylindrical_positive(self):
        g = cylindrical_grid((8, 17, 6))
        assert jacobian_determinant(g).min() > 0

    def test_mirrored_grid_negative(self):
        g = cartesian_grid((4, 4, 4))
        mirrored = CurvilinearGrid(g.xyz[::-1].copy())
        assert jacobian_determinant(mirrored).max() < 0


class TestOrthogonalityAndAspect:
    def test_cartesian_orthogonal(self):
        g = cartesian_grid((5, 5, 5), hi=(1, 2, 3))
        np.testing.assert_allclose(orthogonality(g), 0.0, atol=1e-12)

    def test_sheared_grid_not_orthogonal(self):
        base = cartesian_grid((5, 5, 5)).xyz.copy()
        base[..., 0] += 0.5 * base[..., 1]  # shear x by y
        g = CurvilinearGrid(base)
        assert orthogonality(g).min() > 0.1

    def test_cartesian_aspect(self):
        g = cartesian_grid((5, 5, 5), hi=(4.0, 8.0, 4.0))
        np.testing.assert_allclose(aspect_ratio(g), 2.0, atol=1e-12)

    def test_stretched_ogrid_aspect_bounded(self):
        g = cylindrical_grid((12, 33, 8))
        assert aspect_ratio(g).max() < 100


class TestGridReport:
    def test_report_keys_and_health(self):
        g = cylindrical_grid((10, 25, 6))
        rep = grid_report(g)
        assert rep["n_points"] == 10 * 25 * 6
        assert rep["inverted_nodes"] == 0
        assert rep["min_det"] > 0
        assert 0 <= rep["worst_orthogonality"] <= 1
        assert rep["max_aspect_ratio"] >= 1

    def test_report_flags_tangled_grid(self):
        base = cartesian_grid((5, 5, 5)).xyz.copy()
        base[2, 2, 2] = base[0, 0, 0]  # collapse a node: tangled cells
        rep = grid_report(CurvilinearGrid(base))
        assert rep["inverted_nodes"] > 0 or rep["min_det"] <= 0

    def test_paper_grid_is_healthy(self):
        """The tapered-cylinder O-grid our datasets use is well-formed."""
        from repro.flow import TaperedCylinderFlow

        flow = TaperedCylinderFlow()
        g = cylindrical_grid(
            (16, 16, 8),
            r_inner=flow.r_base,
            r_outer=12.0,
            height=flow.height,
            taper=flow.taper,
        )
        rep = grid_report(g)
        assert rep["inverted_nodes"] == 0
        assert rep["worst_orthogonality"] < 0.9
