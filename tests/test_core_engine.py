"""Tests for the ComputeEngine and the frame-budget governor."""

import numpy as np
import pytest

from repro.core import ComputeEngine, Environment, FrameBudgetGovernor, ToolSettings
from repro.diskio import TimestepLoader
from repro.flow import MemoryDataset, RigidRotation, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid
from repro.tracers import Rake


@pytest.fixture(scope="module")
def dataset():
    grid = cartesian_grid((9, 9, 5), lo=(0, 0, 0), hi=(8, 8, 4))
    field = RigidRotation(omega=[0, 0, 1.0], center=[4, 4, 0]) + UniformFlow(
        [0.05, 0, 0]
    )
    vel = sample_on_grid(field, grid, np.arange(6) * 0.2, dtype=np.float64)
    return MemoryDataset(grid, vel, dt=0.2)


@pytest.fixture()
def engine(dataset):
    return ComputeEngine(dataset, ToolSettings(streamline_steps=20, streakline_length=8))


class TestSeedConversion:
    def test_seeds_convert_to_grid_coords(self, engine):
        rake = Rake([2.0, 4.0, 2.0], [6.0, 4.0, 2.0], n_seeds=5, rake_id=1)
        seeds = engine.rake_seeds_grid(rake)
        assert seeds.shape == (5, 3)
        # Cartesian unit grid: physical == grid coords.
        np.testing.assert_allclose(seeds[:, 0], np.linspace(2, 6, 5), atol=1e-8)

    def test_seed_cache_hit(self, engine):
        rake = Rake([2, 4, 2], [6, 4, 2], n_seeds=5, rake_id=2)
        a = engine.rake_seeds_grid(rake)
        b = engine.rake_seeds_grid(rake)
        assert a is b  # cached, no re-search

    def test_moved_rake_recomputes(self, engine):
        rake = Rake([2, 4, 2], [6, 4, 2], n_seeds=5, rake_id=3)
        a = engine.rake_seeds_grid(rake).copy()
        rake.move_to = None
        from repro.tracers import GrabPoint

        rake.move(GrabPoint.CENTER, [4.0, 5.0, 2.0])
        b = engine.rake_seeds_grid(rake)
        assert not np.allclose(a, b)

    def test_out_of_domain_seeds_dropped(self, engine):
        rake = Rake([-10, 4, 2], [6, 4, 2], n_seeds=5, rake_id=4)
        seeds = engine.rake_seeds_grid(rake)
        assert seeds.shape[0] < 5


class TestComputeRake:
    def test_streamline(self, engine):
        rake = Rake([2, 4, 2], [6, 4, 2], n_seeds=4, kind="streamline", rake_id=10)
        res = engine.compute_rake(rake, 0)
        assert res.n_paths == 4
        assert res.grid_paths.shape[1] == 21

    def test_particle_path(self, engine):
        rake = Rake([2, 4, 2], [6, 4, 2], n_seeds=3, kind="particle_path", rake_id=11)
        res = engine.compute_rake(rake, 0)
        assert res.n_paths == 3
        assert res.grid_paths.shape[1] <= 6  # clamped by dataset length

    def test_streakline_persists_across_frames(self, engine):
        rake = Rake([2, 4, 2], [6, 4, 2], n_seeds=3, kind="streakline", rake_id=12)
        r1 = engine.compute_rake(rake, 0)
        r2 = engine.compute_rake(rake, 1)
        assert r2.grid_paths.shape[1] == 2  # two frames of particles
        # Same timestep twice does not double-advance.
        r3 = engine.compute_rake(rake, 1)
        assert r3.grid_paths.shape[1] == 2

    def test_points_computed_accumulates(self, engine):
        rake = Rake([2, 4, 2], [6, 4, 2], n_seeds=2, rake_id=13)
        before = engine.points_computed
        engine.compute_rake(rake, 0)
        assert engine.points_computed > before


class TestComputeEnvironment:
    def test_all_rakes_computed(self, dataset):
        engine = ComputeEngine(dataset, ToolSettings(streamline_steps=10))
        env = Environment(dataset.n_timesteps)
        id1 = env.add_rake(Rake([2, 4, 2], [6, 4, 2], n_seeds=3))
        id2 = env.add_rake(Rake([4, 2, 2], [4, 6, 2], n_seeds=4, kind="streakline"))
        results = engine.compute_environment(env, 0)
        assert set(results) == {id1, id2}

    def test_removed_rake_state_gc(self, dataset):
        engine = ComputeEngine(dataset, ToolSettings(streakline_length=4))
        env = Environment(dataset.n_timesteps)
        rid = env.add_rake(Rake([2, 4, 2], [6, 4, 2], n_seeds=3, kind="streakline"))
        engine.compute_environment(env, 0)
        assert rid in engine._streaks
        env.remove_rake(rid)
        engine.compute_environment(env, 1)
        assert rid not in engine._streaks

    def test_quality_scales_path_length(self, dataset):
        engine = ComputeEngine(dataset, ToolSettings(streamline_steps=100))
        env = Environment(dataset.n_timesteps)
        rid = env.add_rake(Rake([2, 4, 2], [6, 4, 2], n_seeds=2))
        full = engine.compute_environment(env, 0)[rid]
        low = engine.compute_environment(env, 0, quality=0.25)[rid]
        assert low.grid_paths.shape[1] < full.grid_paths.shape[1]

    def test_engine_with_loader(self, dataset):
        loader = TimestepLoader(dataset, prefetch=False)
        engine = ComputeEngine(
            dataset, ToolSettings(streamline_steps=5), loader=loader
        )
        env = Environment(dataset.n_timesteps)
        env.add_rake(Rake([2, 4, 2], [6, 4, 2], n_seeds=2))
        engine.compute_environment(env, 0)
        assert loader.misses == 1


class TestToolSettings:
    def test_scaled(self):
        s = ToolSettings(streamline_steps=200, particle_path_steps=100)
        half = s.scaled(0.5)
        assert half.streamline_steps == 100
        assert half.particle_path_steps == 50

    def test_scaled_floor(self):
        s = ToolSettings(streamline_steps=200)
        tiny = s.scaled(0.001)
        assert tiny.streamline_steps >= 2

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            ToolSettings().scaled(0.0)
        with pytest.raises(ValueError):
            ToolSettings().scaled(1.5)


class TestGovernor:
    def test_over_budget_cuts_quality(self):
        g = FrameBudgetGovernor(budget=0.125)
        q = g.record(0.5)
        assert q < 1.0

    def test_headroom_restores_quality(self):
        g = FrameBudgetGovernor(budget=0.125)
        g.record(0.5)
        low = g.quality
        for _ in range(50):
            g.record(0.01)
        assert g.quality > low

    def test_quality_bounded(self):
        g = FrameBudgetGovernor(budget=0.125, min_quality=0.1)
        for _ in range(100):
            g.record(10.0)
        assert g.quality == pytest.approx(0.1)
        for _ in range(500):
            g.record(0.0)
        assert g.quality == 1.0

    def test_over_budget_fraction(self):
        g = FrameBudgetGovernor(budget=0.125)
        g.record(0.2)
        g.record(0.05)
        assert g.over_budget_fraction == pytest.approx(0.5)

    def test_converges_near_target_for_linear_workload(self):
        """With compute ~ quality, the governor settles inside the budget."""
        g = FrameBudgetGovernor(budget=0.125)
        base = 0.4  # a workload 3.2x over budget at quality 1
        for _ in range(60):
            g.record(base * g.quality)
        assert base * g.quality <= 0.125

    def test_reset(self):
        g = FrameBudgetGovernor()
        g.record(10.0)
        g.reset()
        assert g.quality == 1.0 and g.frames_recorded == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameBudgetGovernor(budget=0)
        with pytest.raises(ValueError):
            FrameBudgetGovernor(target_fraction=2.0)
        with pytest.raises(ValueError):
            FrameBudgetGovernor(min_quality=0)
        with pytest.raises(ValueError):
            FrameBudgetGovernor(decrease=1.5)
        with pytest.raises(ValueError):
            FrameBudgetGovernor().record(-1.0)
