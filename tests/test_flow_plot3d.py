"""Tests for the PLOT3D-style file format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import read_grid, read_solution, write_grid, write_solution
from repro.grid import cartesian_grid, cylindrical_grid


class TestGridFiles:
    def test_single_block_roundtrip(self, tmp_path):
        g = cylindrical_grid((5, 9, 4))
        path = tmp_path / "grid.x"
        write_grid(path, g)
        back = read_grid(path)
        assert len(back) == 1
        np.testing.assert_allclose(back[0].xyz, g.xyz, atol=1e-6)

    def test_multi_block_roundtrip(self, tmp_path):
        gs = [cartesian_grid((3, 4, 5)), cylindrical_grid((4, 6, 3))]
        path = tmp_path / "grid.x"
        write_grid(path, gs)
        back = read_grid(path)
        assert len(back) == 2
        for a, b in zip(gs, back):
            assert a.shape == b.shape
            np.testing.assert_allclose(b.xyz, a.xyz, atol=1e-6)

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_grid(tmp_path / "g.x", [])

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "grid.x"
        write_grid(path, cartesian_grid((3, 3, 3)))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises((EOFError, ValueError)):
            read_grid(path)

    def test_corrupt_marker_detected(self, tmp_path):
        path = tmp_path / "grid.x"
        write_grid(path, cartesian_grid((3, 3, 3)))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # clobber the final record marker
        path.write_bytes(bytes(data))
        with pytest.raises((EOFError, ValueError)):
            read_grid(path)

    def test_fortran_ordering_on_disk(self, tmp_path):
        """X data is written i-fastest (PLOT3D convention)."""
        g = cartesian_grid((2, 2, 2), hi=(1.0, 1.0, 1.0))
        path = tmp_path / "grid.x"
        write_grid(path, g)
        raw = path.read_bytes()
        # Records: [4|nblocks|4] [4|dims(12B)|4] [4|payload...]
        offset = 4 + 4 + 4 + 4 + 12 + 4 + 4
        x_vals = np.frombuffer(raw[offset : offset + 8 * 4], dtype="<f4")
        # i-fastest: x alternates 0,1 every element.
        np.testing.assert_allclose(x_vals, [0, 1, 0, 1, 0, 1, 0, 1])


class TestSolutionFiles:
    @given(
        ni=st.integers(2, 4),
        nj=st.integers(2, 4),
        nk=st.integers(2, 4),
        nvar=st.integers(1, 4),
    )
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, ni, nj, nk, nvar, tmp_path_factory):
        rng = np.random.default_rng(ni * 100 + nj * 10 + nk + nvar)
        field = rng.normal(size=(ni, nj, nk, nvar)).astype(np.float32)
        path = tmp_path_factory.mktemp("p3d") / "sol.f"
        write_solution(path, field)
        back = read_solution(path)
        assert len(back) == 1
        np.testing.assert_array_equal(back[0], field)

    def test_multi_block(self, tmp_path):
        a = np.ones((2, 3, 4, 3), dtype=np.float32)
        b = np.full((3, 2, 2, 5), 2.0, dtype=np.float32)
        path = tmp_path / "sol.f"
        write_solution(path, [a, b])
        back = read_solution(path)
        np.testing.assert_array_equal(back[0], a)
        np.testing.assert_array_equal(back[1], b)

    def test_velocity_timestep_roundtrip(self, tmp_path):
        """The windtunnel use case: one velocity timestep per function file."""
        rng = np.random.default_rng(3)
        vel = rng.normal(size=(4, 5, 6, 3)).astype(np.float32)
        path = tmp_path / "vel000.f"
        write_solution(path, vel)
        np.testing.assert_array_equal(read_solution(path)[0], vel)

    def test_bad_rank_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_solution(tmp_path / "x.f", np.zeros((2, 2, 2)))

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_solution(tmp_path / "x.f", [])
