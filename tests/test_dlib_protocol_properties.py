"""Property-based round-trip tests for the dlib codec.

Complements ``test_dlib_protocol.py`` (which covers the value grammar
and rejection paths) with the properties the observability PR leans on:

* arrays of *every* whitelisted dtype, at any shape and nesting depth,
  survive a round trip bit-for-bit;
* a :class:`PreEncoded` fragment is indistinguishable on the wire from
  encoding the original value inline — at any position in a payload;
* the trace-ID header extension round-trips, and its absence is
  byte-identical to the pre-extension format, so old-format messages
  (and old decoders) keep working — the compat regression suite.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.dlib.protocol import (
    TRACE_FLAG,
    DlibProtocolError,
    MessageKind,
    PreEncoded,
    decode_message,
    decode_message_ex,
    decode_value,
    encode_message,
    encode_value,
)

# Every dtype the wire whitelists (docs/protocol.md, "Value encoding").
WIRE_DTYPES = [
    np.dtype(t)
    for t in ("<f4", "<f8", "<i2", "<i4", "<i8", "<u2", "<u4", "<u8",
              "|i1", "|u1", "|b1")
]

wire_arrays = st.sampled_from(WIRE_DTYPES).flatmap(
    lambda dt: arrays(
        dtype=dt,
        shape=array_shapes(min_dims=0, max_dims=4, min_side=0, max_side=4),
        elements=(
            st.booleans()
            if dt.kind == "b"
            else st.integers(
                max(np.iinfo(dt).min, -100) if dt.kind in "iu" else -100,
                min(np.iinfo(dt).max, 100) if dt.kind in "iu" else 100,
            )
            if dt.kind in "iu"
            else st.floats(-1e6, 1e6, width=dt.itemsize * 8 if dt.itemsize <= 8 else 64)
        ),
    )
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

# Unlike the sibling file's strategy, arrays appear at any nesting level.
payloads = st.recursive(
    st.one_of(scalars, wire_arrays),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=10,
)


def assert_wire_equal(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        assert a.shape == b.shape
        np.testing.assert_array_equal(a, b)
    elif isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b)
        for x, y in zip(a, b):
            assert_wire_equal(x, y)
    elif isinstance(a, dict):
        assert set(a) == set(b)
        for k in a:
            assert_wire_equal(a[k], b[k])
    else:
        assert a == b


class TestDeepPayloadRoundtrip:
    @given(payloads)
    @settings(max_examples=150)
    def test_nested_payloads_with_arrays_roundtrip(self, value):
        assert_wire_equal(decode_value(encode_value(value)), value)

    @given(wire_arrays)
    @settings(max_examples=150)
    def test_every_whitelisted_dtype_roundtrips_exactly(self, arr):
        back = decode_value(encode_value(arr))
        assert back.shape == arr.shape
        assert back.dtype.str.lstrip("<=|") == arr.dtype.str.lstrip("<=|")
        np.testing.assert_array_equal(back, arr)


class TestPreEncodedPassthrough:
    """A pre-encoded fragment must be a perfect wire citizen: splicing
    ``PreEncoded(encode_value(v))`` anywhere produces the exact bytes of
    encoding ``v`` inline (this is what lets the frame store encode each
    published frame once and the server reuse the fragment per client)."""

    @given(payloads)
    @settings(max_examples=100)
    def test_toplevel_passthrough_is_byte_identical(self, value):
        inline = encode_value(value)
        assert encode_value(PreEncoded(inline)) == inline

    @given(payloads)
    @settings(max_examples=100)
    def test_nested_passthrough_decodes_to_original(self, value):
        wrapped = {"frame": PreEncoded(encode_value(value)), "seq": 7}
        plain = {"frame": value, "seq": 7}
        assert encode_value(wrapped) == encode_value(plain)
        assert_wire_equal(decode_value(encode_value(wrapped)), plain)


_OLD_HEADER = struct.Struct("<BI")


def old_format_message(kind: MessageKind, request_id: int, payload) -> bytes:
    """Hand-pack the pre-extension wire format (no trace field)."""
    return _OLD_HEADER.pack(int(kind), request_id) + encode_value(payload)


class TestTraceHeaderExtension:
    @given(
        st.sampled_from(list(MessageKind)),
        st.integers(0, 2**32 - 1),
        st.integers(1, 2**32 - 1),
        payloads,
    )
    @settings(max_examples=100)
    def test_traced_message_roundtrip(self, kind, rid, trace_id, payload):
        wire = encode_message(kind, rid, payload, trace_id=trace_id)
        assert wire[0] & TRACE_FLAG
        kind2, rid2, tid2, payload2 = decode_message_ex(wire)
        assert kind2 is kind and rid2 == rid and tid2 == trace_id
        assert_wire_equal(payload2, payload)

    @given(st.sampled_from(list(MessageKind)), st.integers(0, 2**32 - 1), payloads)
    @settings(max_examples=100)
    def test_untraced_message_is_byte_identical_to_old_format(self, kind, rid, payload):
        assert encode_message(kind, rid, payload) == old_format_message(
            kind, rid, payload
        )

    @given(st.sampled_from(list(MessageKind)), st.integers(0, 2**32 - 1), payloads)
    @settings(max_examples=100)
    def test_old_format_decodes_with_trace_id_zero(self, kind, rid, payload):
        """Compat regression: the new decoder reads pre-extension bytes."""
        kind2, rid2, tid, payload2 = decode_message_ex(
            old_format_message(kind, rid, payload)
        )
        assert kind2 is kind and rid2 == rid and tid == 0
        assert_wire_equal(payload2, payload)

    @given(st.integers(1, 2**32 - 1))
    @settings(max_examples=50)
    def test_classic_decoder_drops_the_trace_id(self, trace_id):
        wire = encode_message(MessageKind.CALL, 3, {"proc": "p"}, trace_id=trace_id)
        kind, rid, payload = decode_message(wire)
        assert kind is MessageKind.CALL and rid == 3
        assert payload == {"proc": "p"}

    def test_trace_id_out_of_range_rejected(self):
        for bad in (-1, 2**32):
            with pytest.raises(DlibProtocolError, match="32 bits"):
                encode_message(MessageKind.CALL, 1, None, trace_id=bad)

    def test_traced_header_truncation_rejected(self):
        wire = encode_message(MessageKind.CALL, 1, None, trace_id=9)
        with pytest.raises(DlibProtocolError, match="shorter"):
            decode_message_ex(wire[: _OLD_HEADER.size + 2])

    def test_flag_with_zero_trace_id_rejected(self):
        # A forged header: TRACE_FLAG set, but the appended ID is 0.
        wire = (
            _OLD_HEADER.pack(int(MessageKind.CALL) | TRACE_FLAG, 1)
            + struct.pack("<I", 0)
            + encode_value(None)
        )
        with pytest.raises(DlibProtocolError, match="trace_id 0"):
            decode_message_ex(wire)
