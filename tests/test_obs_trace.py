"""Unit tests for request tracing (repro.obs.trace).

All span timing here is driven by a fake clock (rule 3 of the
de-flaking pattern in ``tests/__init__.py``): the tests assert *exact*
durations, which a real clock could never support.
"""

import pytest

from repro.obs import Span, Trace, TraceCollector, current_trace, format_trace, use_trace


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_trace(**kw):
    clock = FakeClock(100.0)
    return Trace(7, "wt.frame", clock=clock, **kw), clock


class TestTrace:
    def test_span_nesting_and_exact_durations(self):
        tr, clock = make_trace()
        with tr.span("handler"):
            clock.advance(0.010)
            with tr.span("inner"):
                clock.advance(0.005)
            clock.advance(0.001)
        tr.finish()
        root = tr.root
        assert root.duration == pytest.approx(0.016)
        (handler,) = root.children
        assert handler.name == "handler"
        assert handler.start == pytest.approx(0.0)
        assert handler.duration == pytest.approx(0.016)
        (inner,) = handler.children
        assert inner.start == pytest.approx(0.010)
        assert inner.duration == pytest.approx(0.005)

    def test_origin_in_the_past_makes_queue_wait_visible(self):
        clock = FakeClock(50.0)
        tr = Trace(1, "p", origin=49.9, clock=clock)
        tr.mark("queue_wait", tr.now(), start=0.0)
        (qw,) = tr.root.children
        assert qw.start == 0.0
        assert qw.duration == pytest.approx(0.1)

    def test_mark_backdates_an_elapsed_interval(self):
        tr, clock = make_trace()
        clock.advance(0.2)
        sp = tr.mark("io", 0.05)
        assert sp.start == pytest.approx(0.15)
        assert sp.duration == pytest.approx(0.05)

    def test_to_wire_shape(self):
        tr, clock = make_trace()
        with tr.span("handler"):
            clock.advance(0.01)
        wire = tr.finish().to_wire()
        assert wire["trace_id"] == 7 and wire["proc"] == "wt.frame"
        assert wire["name"] == "server"
        assert wire["children"][0]["name"] == "handler"
        assert wire["children"][0]["children"] == []

    def test_add_child_grafts_reconstructed_stages(self):
        sp = Span("frame_wait", 0.0, 0.05)
        sp.add_child("load", 0.0, 0.02)
        sp.add_child("integrate", 0.02, 0.03)
        wire = sp.to_wire()
        assert [c["name"] for c in wire["children"]] == ["load", "integrate"]
        assert sum(c["duration"] for c in wire["children"]) == pytest.approx(
            sp.duration
        )


class TestCurrentTrace:
    def test_no_trace_outside_a_block(self):
        assert current_trace() is None

    def test_use_trace_scopes_the_context(self):
        tr, _ = make_trace()
        with use_trace(tr):
            assert current_trace() is tr
            with use_trace(None):
                assert current_trace() is None
            assert current_trace() is tr
        assert current_trace() is None


class TestTraceCollector:
    def test_capacity_bound_keeps_latest(self):
        col = TraceCollector(capacity=3)
        for i in range(5):
            tr = Trace(i, "p", clock=FakeClock())
            col.add(tr.finish())
        assert len(col) == 3
        assert col.total == 5
        ids = [t["trace_id"] for t in col.to_wire()]
        assert ids == [2, 3, 4]
        assert col.latest()["trace_id"] == 4

    def test_to_wire_limit(self):
        col = TraceCollector()
        for i in range(4):
            col.add(Trace(i, "p", clock=FakeClock()).finish())
        assert [t["trace_id"] for t in col.to_wire(2)] == [2, 3]

    def test_accepts_wire_dicts(self):
        col = TraceCollector()
        col.add({"name": "server", "trace_id": 9})
        assert col.latest()["trace_id"] == 9

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceCollector(0)


class TestFormatTrace:
    def test_renders_tree_and_client_latency(self):
        tr, clock = make_trace()
        tr.mark("queue_wait", 0.0, start=0.0)
        with tr.span("handler"):
            clock.advance(0.010)
            with tr.span("frame_wait"):
                clock.advance(0.002)
        tr.finish()
        text = format_trace(tr.to_wire(), client_seconds=0.015)
        assert "trace 7 wt.frame" in text
        assert "client observed 15.00 ms" in text
        lines = text.splitlines()
        assert any(l.strip().startswith("queue_wait") for l in lines)
        # Nesting is rendered as indentation.
        (fw_line,) = [l for l in lines if "frame_wait" in l]
        (h_line,) = [l for l in lines if "handler" in l]
        assert len(fw_line) - len(fw_line.lstrip()) > len(h_line) - len(
            h_line.lstrip()
        )

    def test_rejects_non_trace_input(self):
        with pytest.raises(ValueError):
            format_trace({"nope": 1})
