"""Tests for the profiling helpers."""

import numpy as np
import pytest

from repro.perf.profiling import profile_call


def slow_helper(n):
    total = 0.0
    for i in range(n):
        total += i * 0.5
    return total


def caller(n):
    return slow_helper(n) + slow_helper(n)


class TestProfileCall:
    def test_returns_result_and_rows(self):
        report = profile_call(caller, 5000)
        assert report.result == 2 * slow_helper(5000)
        assert report.total_seconds > 0
        assert len(report.rows) > 0

    def test_finds_named_function(self):
        report = profile_call(caller, 5000)
        rows = report.find("slow_helper")
        assert len(rows) == 1
        assert rows[0].ncalls == 2

    def test_sort_by_tottime(self):
        report = profile_call(caller, 5000, sort="tottime")
        tts = [r.tottime for r in report.rows]
        assert tts == sorted(tts, reverse=True)

    def test_summary_format(self):
        report = profile_call(caller, 2000)
        text = report.summary(5)
        assert "total:" in text and "slow_helper" in text

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("inside profiled call")

        with pytest.raises(RuntimeError):
            profile_call(boom)

    def test_profiles_the_tracer_hot_loop(self):
        """Profiling the benchmark scenario surfaces the interpolation."""
        from repro.flow import MemoryDataset, RigidRotation, sample_on_grid
        from repro.grid import cartesian_grid
        from repro.tracers import integrate_steady

        grid = cartesian_grid((9, 9, 5), lo=(-2, -2, 0), hi=(2, 2, 1))
        ds = MemoryDataset(
            grid, sample_on_grid(RigidRotation(), grid, [0.0], dtype=np.float64)
        )
        gv = ds.grid_velocity(0)
        seeds = np.full((20, 3), 4.0)
        report = profile_call(integrate_steady, gv, seeds, 50, 0.02)
        assert report.find("trilinear_interpolate"), report.summary()

    def test_top_limits(self):
        report = profile_call(caller, 1000)
        assert len(report.top(3)) <= 3
