"""End-to-end tests for the live (in situ) windtunnel server.

The scenario the issue demands: producer + pipeline + several pushed
clients, a ``wt.steer`` mid-session, and every client observing
new-epoch frames within a bounded number of frames — with the
``insitu.*`` counters reconciling exactly in ``wt.metrics``.
"""

import numpy as np
import pytest

from repro.core import WindtunnelClient
from repro.dlib import DlibRemoteError
from repro.flow.solver import SolverConfig
from repro.insitu import InsituWindtunnelServer
from tests import wait_until


@pytest.fixture()
def server():
    srv = InsituWindtunnelServer(
        solver_config=SolverConfig(nx=48, ny=24),
        steps_per_timestep=2,
        ring_capacity=16,
        sim_period_seconds=0.005,
    )
    srv.start()
    yield srv
    srv.stop()


class TestLiveSession:
    def test_solver_free_runs_and_frames_follow(self, server):
        with WindtunnelClient(*server.address, name="viewer") as c:
            wait_until(lambda: server.producer.available >= 3)
            c.fetch_frame()
            t0 = c.latest_state["timestep"]
            assert t0 >= 0
            wait_until(lambda: server.producer.available >= t0 + 3)
            c.fetch_frame()
            assert c.latest_state["timestep"] > t0
            assert "steer_epoch" in c.latest_state

    def test_steer_reaches_pushed_clients_within_bounded_frames(self, server):
        clients = [
            WindtunnelClient(*server.address, name=f"view-{i}") for i in range(4)
        ]
        try:
            for c in clients:
                assert c.subscribe(push=True)["push"] is True
            wait_until(lambda: server.producer.available >= 2)

            pilot = clients[0]
            reply = pilot.steer(u_inf=2.5)
            epoch = reply["epoch"]
            assert epoch >= 1
            assert reply["changes"] == {"u_inf": 2.5}

            # Every pushed client sees a frame carrying the new epoch
            # within a bounded number of publications.
            def all_caught_up():
                for c in clients:
                    c.drain_pushes(timeout=0.05)
                    state = c.latest_state
                    if state is None or state.get("steer_epoch", 0) < epoch:
                        return False
                return True

            wait_until(all_caught_up, timeout=10.0)
            assert server.producer.solver.config.u_inf == 2.5
        finally:
            for c in clients:
                c.close()

    def test_insitu_counters_reconcile_in_metrics(self, server):
        with WindtunnelClient(*server.address, name="ops") as c:
            wait_until(lambda: server.producer.available >= 3)
            # Freeze the frontier so both counters are stable to read.
            c.steer(paused=True)
            wait_until(lambda: server.producer.paused)
            registry = c.metrics()["registry"]
            counters = registry["counters"]
            sim_steps = counters["insitu.sim_steps_total"]
            published = counters["insitu.timesteps_published"]
            assert published >= 4
            # t=0 is primed without stepping; each later timestep is
            # exactly steps_per_timestep solver steps.
            assert sim_steps == (published - 1) * 2
            assert counters["insitu.steer_applied"] >= 1
            gauges = registry["gauges"]
            assert "insitu.sim_rate_hz" in gauges
            assert "insitu.frames_behind_sim" in gauges

    def test_paused_solver_keeps_serving_frames(self, server):
        with WindtunnelClient(*server.address, name="pauser") as c:
            wait_until(lambda: server.producer.available >= 2)
            c.steer(paused=True)
            wait_until(lambda: server.producer.paused)
            frontier = server.producer.available
            # Repeated fetches keep answering from the frozen frontier —
            # no stall, no error, no timestep drift.
            for _ in range(3):
                c.fetch_frame()
                assert c.latest_state["timestep"] <= frontier
            assert server.producer.available == frontier
            c.steer(paused=False)
            wait_until(lambda: server.producer.available > frontier)

    def test_steering_conflict_and_release_over_the_wire(self, server):
        with WindtunnelClient(*server.address, name="a") as a, WindtunnelClient(
            *server.address, name="b"
        ) as b:
            a.steer(u_inf=1.5)
            with pytest.raises(DlibRemoteError) as exc:
                b.steer(u_inf=3.0)
            assert exc.value.remote_type == "SteeringConflictError"
            a.release_steering()
            assert b.steer(u_inf=3.0)["epoch"] >= 2

    def test_invalid_steer_rejected_before_lease(self, server):
        with WindtunnelClient(*server.address, name="a") as a, WindtunnelClient(
            *server.address, name="b"
        ) as b:
            with pytest.raises(DlibRemoteError) as exc:
                a.steer(u_inf=500.0)
            assert exc.value.remote_type == "ValueError"
            # The malformed request must not have captured the lease.
            assert b.steer(u_inf=2.0)["epoch"] >= 1

    def test_live_clock_forbids_replay_time_ops(self, server):
        with WindtunnelClient(*server.address, name="t") as c:
            for op, value in (("scrub", 2.0), ("speed", 4.0), ("step", 1.0)):
                with pytest.raises(DlibRemoteError, match="live clock"):
                    c.time_control(op, value)
            # Pause / resume stay legal: they gate the *view*, the solver
            # is paused through wt.steer instead.
            assert c.time_control("pause")["playing"] is False
            assert c.time_control("resume")["playing"] is True

    def test_state_snapshot_carries_steering_section(self, server):
        with WindtunnelClient(*server.address, name="s") as c:
            c.steer(taper=0.4, angle=15.0)
            wait_until(
                lambda: server.producer.snapshot()["geometry"]["taper"] == 0.4
            )
            snap = c._call("wt.snapshot", c.client_id)
            steering = snap["steering"]
            assert steering["geometry"] == {"taper": 0.4, "angle": 15.0}
            assert steering["applied_epoch"] >= 1
            assert steering["available"] >= 0


class TestRestore:
    def test_restore_reapplies_journaled_steering(self):
        srv = InsituWindtunnelServer(
            solver_config=SolverConfig(nx=32, ny=16), steps_per_timestep=2
        )
        try:
            entries = [
                {"epoch": 1, "changes": {"u_inf": 2.0}},
                {"epoch": 2, "changes": {"taper": 0.5}},
            ]
            srv._rpc_restore(
                None,
                {
                    "sessions": [],
                    "rakes": {},
                    "clock": None,
                    "tool_settings": None,
                    "steering": entries,
                },
            )
            assert srv.producer.solver.config.u_inf == 2.0
            assert srv.producer.snapshot()["geometry"]["taper"] == 0.5
            # Fresh steers get epochs past the restored history.
            user = srv.env.add_user("x")
            srv.sessions.open(user.client_id, "x")
            reply = srv._rpc_steer(None, user.client_id, {"dt": 0.002})
            assert reply["epoch"] == 3
        finally:
            srv.stop()

    def test_restore_without_steering_is_a_noop(self):
        srv = InsituWindtunnelServer(
            solver_config=SolverConfig(nx=32, ny=16), steps_per_timestep=2
        )
        try:
            baseline = srv.producer.solver.config.u_inf
            srv._rpc_restore(
                None,
                {"sessions": [], "rakes": {}, "clock": None,
                 "tool_settings": None},
            )
            assert srv.producer.solver.config.u_inf == baseline
        finally:
            srv.stop()
