"""Tests for disk models, prefetching loader, and residency planning."""

import numpy as np
import pytest

from repro.diskio import (
    CONVEX_DISK,
    DiskModel,
    ResidencyPlan,
    TimestepLoader,
    plan_residency,
    required_disk_bandwidth_mbps,
    table2_rows,
    timesteps_per_gigabyte,
)
from repro.flow import MemoryDataset, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid

MB = 1 << 20


def small_dataset(n_times=6):
    grid = cartesian_grid((4, 4, 4))
    vel = sample_on_grid(UniformFlow(), grid, np.arange(n_times) * 0.1)
    return MemoryDataset(grid, vel, dt=0.1)


class TestTable2Accounting:
    def test_paper_rows(self):
        """Table 2 columns at the self-consistent 12 bytes/point."""
        rows = table2_rows()
        by_points = {r["points"]: r for r in rows}
        # Row 1: the tapered cylinder.
        tc = by_points[131_072]
        assert tc["bytes_per_timestep"] == 1_572_864
        assert tc["timesteps_per_gb"] == 682
        assert tc["required_mbps"] == pytest.approx(15.0)
        # Row 2: "current max".
        cm = by_points[436_906]
        assert cm["bytes_per_timestep"] == 5_242_872
        assert cm["timesteps_per_gb"] == 204
        assert cm["required_mbps"] == pytest.approx(50.0, abs=0.01)
        # Row 3: one million points.
        m1 = by_points[1_000_000]
        assert m1["timesteps_per_gb"] == 89
        assert m1["required_mbps"] == pytest.approx(114.4, abs=0.05)
        # Row 4: the Harrier-scale 3M points / 36 MB timesteps.
        m3 = by_points[3_000_000]
        assert m3["bytes_per_timestep"] == 36_000_000
        assert m3["timesteps_per_gb"] == 29
        assert m3["required_mbps"] == pytest.approx(343.32, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            timesteps_per_gigabyte(0)
        with pytest.raises(ValueError):
            required_disk_bandwidth_mbps(100, fps=0)


class TestDiskModel:
    def test_convex_range(self):
        assert CONVEX_DISK.sustained_bandwidth(100 * MB) == pytest.approx(50 * MB)
        assert CONVEX_DISK.sustained_bandwidth(512 * 1024) == pytest.approx(30 * MB)

    def test_bandwidth_monotone_in_size(self):
        sizes = [MB, 4 * MB, 16 * MB, 64 * MB]
        bws = [CONVEX_DISK.sustained_bandwidth(s) for s in sizes]
        assert bws == sorted(bws)

    def test_paper_eighth_second_capacity(self):
        """Section 5.1: ~3.25 MB loads in 1/8 s at 30 MB/s."""
        cap = CONVEX_DISK.max_timestep_bytes(0.125)
        assert 3.0 * MB < cap < 5.5 * MB

    def test_tapered_cylinder_loads_in_budget(self):
        assert CONVEX_DISK.read_time(1_572_864) < 0.125

    def test_harrier_does_not(self):
        """The 36 MB/timestep Harrier dataset busts the budget (sec 5.1)."""
        assert CONVEX_DISK.read_time(36_000_000) > 0.125

    def test_latency_in_read_time(self):
        m = DiskModel("seeky", 10 * MB, 20 * MB, latency=0.01)
        assert m.read_time(MB) > 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskModel("bad", 0.0, 10.0)
        with pytest.raises(ValueError):
            DiskModel("bad", 10.0, 5.0)
        with pytest.raises(ValueError):
            DiskModel("bad", 10.0, 20.0, small_size=5.0, large_size=5.0)
        with pytest.raises(ValueError):
            CONVEX_DISK.sustained_bandwidth(0)

    def test_budget_below_latency(self):
        m = DiskModel("seeky", 10 * MB, 20 * MB, latency=0.2)
        assert m.max_timestep_bytes(0.125) == 0


class TestTimestepLoader:
    def test_basic_load(self):
        ds = small_dataset()
        with TimestepLoader(ds, prefetch=False) as loader:
            gv = loader.load(0)
            np.testing.assert_allclose(gv, ds.grid_velocity(0))
            assert loader.misses == 1

    def test_buffer_hit(self):
        ds = small_dataset()
        with TimestepLoader(ds, prefetch=False) as loader:
            loader.load(2)
            loader.load(2)
            assert loader.hits == 1 and loader.misses == 1

    def test_prefetch_hides_next_load(self):
        ds = small_dataset()
        with TimestepLoader(ds) as loader:
            loader.load(0)
            loader.drain()
            assert 1 in loader.buffered_timesteps
            loader.load(1)
            assert loader.hits == 1
            assert loader.prefetch_issued >= 1

    def test_backward_direction_prefetches_upstream(self):
        ds = small_dataset()
        with TimestepLoader(ds) as loader:
            loader.load(3, direction=-1)
            loader.drain()
            assert 2 in loader.buffered_timesteps

    def test_no_prefetch_past_end(self):
        ds = small_dataset(n_times=3)
        with TimestepLoader(ds) as loader:
            loader.load(2)
            loader.drain()
            assert loader.prefetch_issued == 0

    def test_modeled_disk_time_accumulates(self):
        ds = small_dataset()
        clock_time = []
        with TimestepLoader(
            ds,
            disk_model=DiskModel("tiny", 10 * MB, 20 * MB),
            prefetch=False,
            sleep=clock_time.append,
        ) as loader:
            loader.load(0)
            loader.load(1)
        assert loader.modeled_read_seconds == pytest.approx(sum(clock_time))
        assert loader.modeled_read_seconds > 0

    def test_capacity_eviction(self):
        ds = small_dataset()
        with TimestepLoader(ds, prefetch=False, capacity=2) as loader:
            for t in range(4):
                loader.load(t)
            assert len(loader.buffered_timesteps) == 2
            assert loader.buffered_timesteps == [2, 3]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TimestepLoader(small_dataset(), capacity=0)


class TestResidency:
    def test_fully_resident(self):
        ds = small_dataset()
        plan = plan_residency(ds, memory_bytes=ds.total_nbytes)
        assert plan.fits_in_memory
        assert plan.window_timesteps == ds.n_timesteps
        assert plan.required_disk_mbps == 0.0
        assert plan.max_particle_path_steps == ds.n_timesteps - 1

    def test_streaming_window(self):
        ds = small_dataset(n_times=6)
        plan = plan_residency(ds, memory_bytes=ds.timestep_nbytes * 3)
        assert not plan.fits_in_memory
        assert plan.window_timesteps == 3
        assert plan.max_particle_path_steps == 2
        assert plan.required_disk_mbps > 0

    def test_nothing_fits(self):
        ds = small_dataset()
        with pytest.raises(ValueError):
            plan_residency(ds, memory_bytes=ds.timestep_nbytes - 1)

    def test_feasibility_against_disk(self):
        ds = small_dataset(n_times=6)
        plan = plan_residency(ds, memory_bytes=ds.timestep_nbytes * 2)
        assert plan.feasible_at(CONVEX_DISK.min_bandwidth)

    def test_paper_scaling_convex_vs_workstation(self):
        """Section 5.1: the Convex's 1 GB holds datasets 'four times as
        large as in the stand-alone virtual windtunnel case'."""
        from repro.diskio.residency import CONVEX_C3240_MEMORY, SGI_380GT_MEMORY

        assert CONVEX_C3240_MEMORY == 4 * SGI_380GT_MEMORY

    def test_validation(self):
        ds = small_dataset()
        with pytest.raises(ValueError):
            plan_residency(ds, memory_bytes=0)
        with pytest.raises(ValueError):
            plan_residency(ds, memory_bytes=ds.total_nbytes, fps=0)

    def test_plan_is_frozen(self):
        ds = small_dataset()
        plan = plan_residency(ds, memory_bytes=ds.total_nbytes)
        with pytest.raises(AttributeError):
            plan.fits_in_memory = False
