"""Tests for the synthetic tapered-cylinder flow and dataset."""

import numpy as np
import pytest

from repro.flow import TaperedCylinderFlow, tapered_cylinder_dataset


@pytest.fixture(scope="module")
def flow():
    return TaperedCylinderFlow()


class TestGeometry:
    def test_taper_reduces_radius(self, flow):
        assert flow.body_radius(0.0) == pytest.approx(flow.r_base)
        assert flow.body_radius(flow.height) == pytest.approx(
            flow.r_base * (1 - flow.taper)
        )

    def test_radius_clamped_beyond_span(self, flow):
        assert flow.body_radius(2 * flow.height) == flow.body_radius(flow.height)
        assert flow.body_radius(-1.0) == flow.body_radius(0.0)

    def test_shedding_frequency_increases_with_height(self, flow):
        """The taper's signature: thinner body sheds faster (smaller T)."""
        t_bottom = flow.shedding_period(np.array(0.0))
        t_top = flow.shedding_period(np.array(flow.height))
        assert t_top < t_bottom

    def test_strouhal_relation(self, flow):
        z = 1.0
        a = flow.body_radius(z)
        expected = 2 * a / (flow.strouhal * flow.u_inf)
        np.testing.assert_allclose(flow.shedding_period(np.array(z)), expected)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TaperedCylinderFlow(taper=1.0)
        with pytest.raises(ValueError):
            TaperedCylinderFlow(u_inf=-1.0)
        with pytest.raises(ValueError):
            TaperedCylinderFlow(n_wake_vortices=0)


class TestVelocityField:
    def test_no_slip_inside_body(self, flow):
        pts = np.array([[0.0, 0.0, 1.0], [0.2, 0.1, 2.0]])
        np.testing.assert_allclose(flow(pts, t=3.0), 0.0, atol=1e-12)

    def test_far_field_approaches_free_stream(self, flow):
        pts = np.array([[-40.0, 30.0, 2.0]])
        v = flow(pts, t=5.0)[0]
        np.testing.assert_allclose(v, [flow.u_inf, 0.0, 0.0], atol=0.05)

    def test_field_is_unsteady_in_wake(self, flow):
        pts = np.array([[2.5, 0.3, 1.0]])
        assert not np.allclose(flow(pts, 0.0), flow(pts, 1.3), atol=1e-4)

    def test_wake_is_vortical(self, flow):
        """Vertical velocity fluctuations appear downstream (the street)."""
        x = np.linspace(1.5, 6.0, 25)
        pts = np.stack([x, np.zeros_like(x), np.full_like(x, 1.0)], axis=1)
        v = flow(pts, t=12.0)
        assert np.abs(v[:, 1]).max() > 0.1 * flow.u_inf

    def test_recirculation_behind_body(self, flow):
        """Standing eddies produce reversed (u<0) flow just behind the body."""
        t = 0.0
        z = 0.5
        a = float(flow.body_radius(z))
        x = np.linspace(1.05 * a, 2.5 * a, 30)
        pts = np.stack([x, np.zeros_like(x), np.full_like(x, z)], axis=1)
        u = flow(pts, t)[:, 0]
        assert u.min() < 0.0

    def test_everything_finite(self, flow):
        rng = np.random.default_rng(11)
        pts = rng.uniform([-10, -10, -1], [20, 10, 6], size=(500, 3))
        for t in [0.0, 0.37, 8.0]:
            assert np.all(np.isfinite(flow(pts, t)))

    def test_spanwise_component_present(self, flow):
        pts = np.array([[1.5, 0.0, 1.3]])
        ws = [abs(flow(pts, t)[0, 2]) for t in np.linspace(0, 4, 9)]
        assert max(ws) > 0.0

    def test_shedding_alternates_sides(self, flow):
        """v_y at a wake probe changes sign over one shedding period."""
        z = 1.0
        period = float(flow.shedding_period(np.array(z)))
        pts = np.array([[3.0, 0.0, z]])
        vy = [flow(pts, t)[0, 1] for t in np.linspace(5.0, 5.0 + period, 24)]
        assert min(vy) < 0.0 < max(vy)


class TestDataset:
    def test_paper_footprint(self):
        ds = tapered_cylinder_dataset(shape=(16, 16, 8), n_timesteps=3)
        assert ds.n_timesteps == 3
        assert ds.velocity(0).dtype == np.float32

    def test_default_shape_matches_paper(self):
        # Don't synthesize the full dataset here; just check the advertised
        # default grid footprint equals the paper's 131,072 points.
        import inspect

        sig = inspect.signature(tapered_cylinder_dataset)
        assert sig.parameters["shape"].default == (64, 64, 32)
        ni, nj, nk = sig.parameters["shape"].default
        assert ni * nj * nk == 131072

    def test_grid_fits_body(self):
        ds = tapered_cylinder_dataset(shape=(8, 12, 6), n_timesteps=2)
        inner_r = np.linalg.norm(ds.grid.xyz[0, 0, 0, :2])
        np.testing.assert_allclose(inner_r, 0.5, atol=1e-12)

    def test_velocity_zero_on_body_surface_nodes(self):
        ds = tapered_cylinder_dataset(shape=(8, 12, 6), n_timesteps=2)
        surface_v = ds.velocity(1)[0]  # innermost ring = body surface
        np.testing.assert_allclose(surface_v, 0.0, atol=1e-6)

    def test_timesteps_differ(self):
        ds = tapered_cylinder_dataset(shape=(8, 12, 6), n_timesteps=2, dt=0.5)
        assert not np.allclose(ds.velocity(0), ds.velocity(1))
