"""Deterministic multi-client soak: 4 clients x 200 RPCs over faulty links.

Each client runs its full RPC budget through its own
:class:`~repro.netsim.faults.FaultyChannel` with a *seeded* fault plan —
the whole fault schedule is a pure function of the seeds, so a failure
reproduces byte for byte.  The fault mix is chosen so that every
injected fault has an exactly accountable consequence:

* duplicates  — the server executes the call twice and the client skips
  the stale second response: ``dlib.calls_served`` exceeds the success
  count by exactly the duplicate count;
* stalls      — run on a :class:`VirtualClock`, so they are free at test
  time and cannot interact with timeouts;
* drops       — the request vanishes before the server ever sees it, so
  each drop costs exactly one client retry and zero server executions.

The assertions are the ISSUE-3 soak contract: no lost responses (every
call returns its own echo), strictly monotone trace IDs per client, and
registry counters that reconcile *exactly* — server-side executions,
client-side successes, and injected-fault counts all from one snapshot.

``WT_BENCH_FAST=1`` shrinks the per-client budget for CI smoke runs;
the accounting identities are budget-independent.
"""

import os

import pytest

from repro.dlib import DlibClient, DlibServer, RetryPolicy
from repro.dlib.transport import connect_tcp
from repro.netsim import FaultPlan, FaultyChannel, VirtualClock
from repro.obs import MetricsRegistry

from tests import wait_until

N_CLIENTS = 4
RPCS_PER_CLIENT = 50 if os.environ.get("WT_BENCH_FAST") else 200


@pytest.fixture()
def soak():
    """A dlib server with an echo procedure and a shared client registry."""
    registry = MetricsRegistry()
    srv = DlibServer(registry=registry, trace_capacity=16)
    srv.register("soak.echo", lambda ctx, x: x)
    srv.start()
    client_registry = MetricsRegistry()
    yield srv, registry, client_registry
    srv.stop()


def test_multi_client_soak_reconciles_exactly(soak):
    srv, server_reg, client_reg = soak
    clock = VirtualClock()
    plans = [
        FaultPlan(seed=11),                                   # clean baseline
        FaultPlan(seed=22, duplicate_rate=0.08),              # duplicated requests
        FaultPlan(seed=33, stall_rate=0.20, stall_seconds=0.5),  # virtual stalls
        FaultPlan(seed=44, drop_rate=0.04),                   # dropped requests
    ]
    channels: list[FaultyChannel] = []
    clients: list[DlibClient] = []
    retry_seeds = iter(range(1000, 2000))

    def make_channel(plan):
        chan = FaultyChannel(
            connect_tcp(*srv.address), plan,
            clock=clock if plan.stall_rate else None,
            registry=client_reg,
        )
        channels.append(chan)
        return chan

    try:
        for i, plan in enumerate(plans):
            dropper = plan.drop_rate > 0
            clients.append(
                DlibClient(
                    stream=make_channel(plan),
                    # A drop is invisible to the sender: recovery is a
                    # deadline + retry, which reconnects through the
                    # factory (a fresh channel continues the plan's PRNG
                    # sequence via a derived seed).
                    stream_factory=(
                        (lambda p=plan: make_channel(
                            FaultPlan(seed=p.seed + len(channels),
                                      drop_rate=p.drop_rate)))
                        if dropper else None
                    ),
                    call_timeout=0.2 if dropper else None,
                    retry=RetryPolicy(
                        max_attempts=8, base_delay=0.005, max_delay=0.05,
                        jitter=0.0, seed=next(retry_seeds),
                    ) if dropper else None,
                    idempotent=("soak.echo",),
                    trace=True,
                    registry=client_reg,
                )
            )

        # -- the soak ----------------------------------------------------
        lost = 0
        trace_ids = [[] for _ in clients]
        for k in range(RPCS_PER_CLIENT):
            for i, c in enumerate(clients):
                token = f"c{i}-{k}"
                if c.call("soak.echo", token) != token:
                    lost += 1
                trace_ids[i].append(c.last_trace["trace_id"])

        # -- no lost responses -------------------------------------------
        total = N_CLIENTS * RPCS_PER_CLIENT
        assert lost == 0

        # -- monotone trace IDs per client -------------------------------
        for ids in trace_ids:
            assert len(ids) == RPCS_PER_CLIENT
            assert all(b > a for a, b in zip(ids, ids[1:]))

        # -- the fault schedule actually fired (and deterministically) ---
        stats = [ch.stats for ch in channels]
        duplicates = sum(s.duplicates for s in stats)
        drops = sum(s.drops for s in stats)
        stalls = sum(s.stalls for s in stats)
        assert duplicates > 0 and drops > 0 and stalls > 0
        assert clock.now == pytest.approx(sum(s.stalled_seconds for s in stats))

        # -- exact reconciliation, one snapshot each side ----------------
        # The dispatch record of a call is written *after* its response
        # bytes go out, so the client can observe the reply a beat
        # before the server finishes the bookkeeping: wait on the
        # progress counter, per the pattern in tests/__init__.py.
        wait_until(lambda: srv.traces.total >= total + duplicates)
        server_counters = server_reg.snapshot()["counters"]
        client_counters = client_reg.snapshot()["counters"]

        # Every duplicate executed once more than the client observed;
        # every drop executed once less than the client attempted.
        assert server_counters["dlib.calls_served"] == total + duplicates
        assert server_counters["dlib.call_errors"] == 0
        assert server_counters["dlib.protocol_errors"] == 0

        # All executions were traced: the dispatch histogram and the
        # trace collector saw exactly the executed calls.
        hists = server_reg.snapshot()["histograms"]
        assert hists["dlib.dispatch_seconds"]["count"] == total + duplicates
        assert srv.traces.total == total + duplicates

        # Client side: one success per call, and the channels' own
        # fault counters landed in the same registry as the stats.
        assert client_counters["client.calls"] == total
        assert client_counters["faults.duplicates"] == duplicates
        assert client_counters["faults.drops"] == drops
        assert client_counters["faults.stalls"] == stalls
        assert client_counters["faults.sends"] == sum(s.sends for s in stats)

        # The per-procedure latency histogram saw every success.
        client_hists = client_reg.snapshot()["histograms"]
        assert client_hists["client.rpc.soak.echo"]["count"] == total
    finally:
        for c in clients:
            try:
                c.close()
            except Exception:
                pass


def test_soak_is_reproducible_from_seeds():
    """Two identical runs inject byte-identical fault schedules."""

    def run():
        srv = DlibServer()
        srv.register("soak.echo", lambda ctx, x: x)
        srv.start()
        try:
            chan = FaultyChannel(
                connect_tcp(*srv.address), FaultPlan(seed=7, duplicate_rate=0.3)
            )
            with DlibClient(stream=chan, trace=True) as c:
                for k in range(30):
                    assert c.call("soak.echo", k) == k
            return (
                chan.stats.sends, chan.stats.duplicates, srv.context.calls_served
            )
        finally:
            srv.stop()

    assert run() == run()
