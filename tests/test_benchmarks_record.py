"""Argument-routing tests for the perf recorder (benchmarks/record.py).

The recorder grew four alternate lanes (``--gateway`` -> BENCH_6,
``--soak`` -> BENCH_7, ``--sweep`` -> BENCH_8, ``--cache`` ->
BENCH_9) beside the default
BENCH_4 run; these tests pin the dispatch table and the default output
paths without running any benchmark — each lane's recorder function is
monkeypatched to capture its call.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture()
def record(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCHMARKS))
    import record as record_mod

    return record_mod


class TestLaneDispatch:
    @pytest.mark.parametrize(
        "flag, func, bench",
        [
            ("--gateway", "record_gateway", "BENCH_6.json"),
            ("--soak", "record_soak", "BENCH_7.json"),
            ("--sweep", "record_sweep", "BENCH_8.json"),
            ("--cache", "record_cache", "BENCH_9.json"),
        ],
    )
    def test_flag_routes_to_lane_with_default_output(
        self, record, monkeypatch, flag, func, bench
    ):
        calls = []

        def fake(output):
            calls.append(output)
            return 0

        monkeypatch.setattr(record, func, fake)
        assert record.main([flag]) == 0
        assert calls == [BENCHMARKS / "output" / bench]

    @pytest.mark.parametrize(
        "flag, func",
        [
            ("--gateway", "record_gateway"),
            ("--soak", "record_soak"),
            ("--sweep", "record_sweep"),
            ("--cache", "record_cache"),
        ],
    )
    def test_output_flag_overrides_lane_default(
        self, record, monkeypatch, tmp_path, flag, func
    ):
        calls = []
        monkeypatch.setattr(
            record, func, lambda output: calls.append(output) or 0
        )
        target = tmp_path / "custom.json"
        assert record.main([flag, "--output", str(target)]) == 0
        assert calls == [target]

    def test_lane_exit_code_propagates(self, record, monkeypatch):
        monkeypatch.setattr(record, "record_sweep", lambda output: 1)
        assert record.main(["--sweep"]) == 1


class TestDefaultLane:
    def test_no_flag_runs_bench4_to_default_path(
        self, record, monkeypatch, tmp_path
    ):
        # Stub out the actual benchmarks; assert the BENCH_4 shell runs
        # and writes its JSON to the chosen path.
        monkeypatch.setattr(
            record,
            "bench_fused_frame",
            lambda dataset: {
                "fused_frame_seconds": 0.001,
                "per_rake_frame_seconds": 0.01,
                "speedup": 10.0,
                "points_per_second": 1e6,
            },
        )
        monkeypatch.setattr(
            record, "tapered_cylinder_dataset",
            lambda **kw: object(),
        )
        target = tmp_path / "b4.json"
        code = record.main(
            ["--skip-table3", "--output", str(target)]
        )
        assert code == 0
        assert target.is_file()
        text = target.read_text()
        assert '"bench": "BENCH_4"' in text

    def test_speedup_gate_fails_the_run(self, record, monkeypatch, tmp_path):
        monkeypatch.setattr(
            record,
            "bench_fused_frame",
            lambda dataset: {
                "fused_frame_seconds": 0.01,
                "per_rake_frame_seconds": 0.001,
                "speedup": 0.1,
                "points_per_second": 1e5,
            },
        )
        monkeypatch.setattr(
            record, "tapered_cylinder_dataset", lambda **kw: object()
        )
        code = record.main(
            ["--skip-table3", "--output", str(tmp_path / "b4.json")]
        )
        assert code == 1
