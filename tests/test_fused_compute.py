"""Fused megabatch compute: equivalence, zero-allocation, field transport.

The golden-trajectory contract of the fused frame path: gathering every
rake's seeds into one integration call and slicing the result back by
offset must be *bit-identical* to per-rake calls on the ``vector``
backend and within round-off on ``scalar``/``parallel`` — across mixed
rake kinds and mid-frame particle death.  Alongside it, the two
optimizations underneath: the :class:`IntegratorWorkspace` zero-allocation
kernels and the shared-memory field residency of the process backends.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core import ComputeEngine, ToolSettings
from repro.flow import MemoryDataset, RigidRotation, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid
from repro.perf import ComputeModel
from repro.tracers import Rake
from repro.tracers import integrate as integ
from repro.tracers.integrate import (
    IntegratorWorkspace,
    advance_rk2,
    configure_pools,
    integrate_paths,
    integrate_steady,
    pool_start_method,
    transport_stats,
)
from repro.tracers.particlepath import compute_particle_paths


@pytest.fixture(scope="module")
def dataset():
    grid = cartesian_grid((12, 12, 6), lo=(0, 0, 0), hi=(11, 11, 5))
    field = RigidRotation(omega=[0, 0, 1.0], center=[5.5, 5.5, 0]) + UniformFlow(
        [0.05, 0.02, 0.0]
    )
    vel = sample_on_grid(field, grid, np.arange(6) * 0.2, dtype=np.float64)
    return MemoryDataset(grid, vel, dt=0.2)


def _mixed_rakes():
    """Streamline + particle-path + streakline rakes, some near the wall.

    Rake 4 hugs the domain edge so a swirl of its particles exits the
    domain mid-frame — the rake-death case the slicing must survive.
    """
    return {
        1: Rake([2, 5, 2], [9, 5, 2], n_seeds=5, kind="streamline", rake_id=1),
        2: Rake([5, 2, 3], [5, 9, 3], n_seeds=4, kind="streamline", rake_id=2),
        3: Rake([3, 3, 1], [8, 8, 4], n_seeds=6, kind="particle_path", rake_id=3),
        4: Rake(
            [0.3, 0.3, 2], [10.7, 0.3, 2], n_seeds=5, kind="streamline", rake_id=4
        ),
        5: Rake([4, 7, 2], [7, 4, 2], n_seeds=3, kind="particle_path", rake_id=5),
        6: Rake([5, 5, 1], [6, 6, 4], n_seeds=3, kind="streakline", rake_id=6),
    }


def _engines(dataset, backend, workers=2):
    settings = ToolSettings(
        streamline_steps=40, streamline_dt=0.08, particle_path_steps=4,
        streakline_length=8,
    )
    fused = ComputeEngine(
        dataset, settings, backend=backend, workers=workers, fused=True
    )
    per_rake = ComputeEngine(
        dataset, settings, backend=backend, workers=workers, fused=False
    )
    return fused, per_rake


class TestFusedEquivalence:
    def test_vector_bit_identical_mixed_kinds(self, dataset):
        fused, per_rake = _engines(dataset, "vector")
        a = fused.compute_rakes(_mixed_rakes(), 0)
        b = per_rake.compute_rakes(_mixed_rakes(), 0)
        assert set(a) == set(b)
        for rid in a:
            assert np.array_equal(a[rid].grid_paths, b[rid].grid_paths), rid
            assert np.array_equal(a[rid].lengths, b[rid].lengths), rid

    def test_vector_mid_frame_rake_death(self, dataset):
        # The wall-hugging rake: some of its particles must actually die
        # mid-integration for this test to mean anything.
        fused, per_rake = _engines(dataset, "vector")
        rakes = _mixed_rakes()
        a = fused.compute_rakes(rakes, 0)
        b = per_rake.compute_rakes(rakes, 0)
        steps = fused.settings.streamline_steps
        died = a[4].lengths < steps + 1
        assert died.any(), "edge rake should lose particles mid-frame"
        assert not died.all(), "edge rake should also keep particles"
        for rid in a:
            assert np.array_equal(a[rid].lengths, b[rid].lengths), rid
            assert np.array_equal(a[rid].grid_paths, b[rid].grid_paths), rid

    @pytest.mark.parametrize("backend", ["scalar", "parallel"])
    def test_scalar_and_parallel_within_roundoff(self, dataset, backend):
        fused, per_rake = _engines(dataset, backend)
        a = fused.compute_rakes(_mixed_rakes(), 0)
        b = per_rake.compute_rakes(_mixed_rakes(), 0)
        for rid in a:
            np.testing.assert_allclose(
                a[rid].grid_paths, b[rid].grid_paths, atol=1e-10
            )
            assert np.array_equal(a[rid].lengths, b[rid].lengths), rid

    def test_fused_metrics_recorded(self, dataset):
        fused, _ = _engines(dataset, "vector")
        rakes = _mixed_rakes()
        fused.compute_rakes(rakes, 0)
        # Streaklines stay per-rake; the batch is the 19 stream/path seeds.
        assert fused.fused_batch_size == 23
        assert fused.points_per_second > 0

    def test_fused_is_default(self, dataset):
        assert ComputeEngine(dataset).fused is True

    def test_empty_rake_set(self, dataset):
        fused, _ = _engines(dataset, "vector")
        assert fused.compute_rakes({}, 0) == {}

    def test_single_rake_all_seeds_out_of_domain(self, dataset):
        fused, per_rake = _engines(dataset, "vector")
        rakes = {
            9: Rake([-9, -9, -9], [-5, -5, -5], n_seeds=3, rake_id=9),
            1: Rake([2, 5, 2], [9, 5, 2], n_seeds=5, rake_id=1),
        }
        a = fused.compute_rakes(rakes, 0)
        b = per_rake.compute_rakes(rakes, 0)
        assert a[9].n_paths == 0 == b[9].n_paths
        assert np.array_equal(a[1].grid_paths, b[1].grid_paths)


class TestWorkspaceKernels:
    @pytest.fixture(scope="class")
    def field(self):
        rng = np.random.default_rng(42)
        return np.ascontiguousarray(rng.normal(0, 0.8, size=(24, 20, 16, 3)))

    def test_steady_bit_identical(self, field):
        rng = np.random.default_rng(1)
        seeds = rng.uniform(0, 15, size=(200, 3))
        p0, l0 = integrate_steady(field, seeds, 120, 0.05)
        ws = IntegratorWorkspace()
        p1, l1 = integrate_steady(field, seeds, 120, 0.05, workspace=ws)
        assert np.array_equal(p0, p1)
        assert np.array_equal(l0, l1)

    def test_paths_bit_identical(self, field):
        rng = np.random.default_rng(2)
        fields = [
            np.ascontiguousarray(rng.normal(0, 0.5, size=(16, 16, 12, 3)))
            for _ in range(8)
        ]
        seeds = rng.uniform(0, 11, size=(64, 3))
        ws = IntegratorWorkspace()
        p0, l0 = integrate_paths(lambda t: fields[t], seeds, 0, 6, 8, 0.1)
        p1, l1 = integrate_paths(
            lambda t: fields[t], seeds, 0, 6, 8, 0.1, workspace=ws
        )
        assert np.array_equal(p0, p1)
        assert np.array_equal(l0, l1)

    def test_advance_rk2_out_bit_identical(self, field):
        rng = np.random.default_rng(3)
        coords = rng.uniform(0, 14, size=(50, 3))
        plain = advance_rk2(field, coords, 0.05)
        ws = IntegratorWorkspace()
        out = np.empty_like(coords)
        got = advance_rk2(field, coords, 0.05, out=out, workspace=ws)
        assert got is out
        assert np.array_equal(plain, out)

    def test_ineligible_field_falls_back(self):
        # float32 fields bypass the fast path but must stay correct.
        rng = np.random.default_rng(4)
        field32 = rng.normal(0, 0.5, size=(10, 10, 8, 3)).astype(np.float32)
        seeds = rng.uniform(0, 7, size=(20, 3))
        p0, l0 = integrate_steady(field32, seeds, 15, 0.05)
        p1, l1 = integrate_steady(
            field32, seeds, 15, 0.05, workspace=IntegratorWorkspace()
        )
        assert np.array_equal(p0, p1)
        assert np.array_equal(l0, l1)

    def test_zero_steps(self, field):
        seeds = np.array([[1.0, 1.0, 1.0], [50.0, 1.0, 1.0]])
        p, l = integrate_steady(field, seeds, 0, 0.05, workspace=IntegratorWorkspace())
        assert p.shape == (2, 1, 3)
        assert l.tolist() == [1, 1]

    def test_paths_buffer_pool_rotates(self):
        ws = IntegratorWorkspace(paths_pool=2)
        a = ws.paths_buffer(8, 5)
        b = ws.paths_buffer(8, 5)
        assert a is not b
        assert ws.paths_buffer(8, 5) is a  # pool of 2 wraps around
        assert ws.paths_buffer(8, 6) is not a  # different shape, new pool

    def test_paths_pool_validation(self):
        with pytest.raises(ValueError):
            IntegratorWorkspace(paths_pool=0)

    def test_zero_allocation_steady_state(self, field):
        """The acceptance criterion: no per-step allocations in the loop.

        A warmed workspace run must allocate orders of magnitude less than
        the naive kernel — only per-call setup (lengths, the seed-domain
        mask), nothing proportional to the step count.
        """
        rng = np.random.default_rng(5)
        # Interior seeds, small dt: nobody dies, the loop stays on the
        # steady-state (allocation-free) path.
        seeds = rng.uniform(4, 12, size=(512, 3))
        n_steps = 200
        ws = IntegratorWorkspace()
        for _ in range(ws.paths_pool + 1):  # warm every pooled buffer
            integrate_steady(field, seeds, n_steps, 0.01, workspace=ws)
        tracemalloc.start()
        base, _ = tracemalloc.get_traced_memory()
        integrate_steady(field, seeds, n_steps, 0.01, workspace=ws)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        workspace_overhead = peak - base
        tracemalloc.start()
        base, _ = tracemalloc.get_traced_memory()
        integrate_steady(field, seeds, n_steps, 0.01)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        naive_overhead = peak - base
        # Per-call setup is ~tens of KB; per-step churn would be MBs
        # (512 seeds x 200 steps x several temporaries).
        assert workspace_overhead < 128 * 1024, workspace_overhead
        assert naive_overhead > 10 * workspace_overhead, (
            workspace_overhead,
            naive_overhead,
        )


class TestFieldTransport:
    def setup_method(self):
        integ.reset_transport_stats()

    def test_token_memoized_by_identity(self):
        rng = np.random.default_rng(6)
        gv = np.ascontiguousarray(rng.normal(size=(8, 8, 6, 3)))
        integ.reset_transport_stats()
        t1 = integ._field_token(gv)
        t2 = integ._field_token(gv)
        assert t1 == t2
        assert transport_stats()["field_checksums"] == 1
        # A distinct array with identical content: new checksum, equal token.
        t3 = integ._field_token(gv.copy())
        assert t3 == t1
        assert transport_stats()["field_checksums"] == 2

    def test_field_ships_once_per_timestep(self):
        """Acceptance: shm residency ships the field once, not per chunk."""
        rng = np.random.default_rng(7)
        gv = np.ascontiguousarray(rng.normal(0, 0.5, size=(10, 10, 8, 3)))
        seeds = rng.uniform(0, 7, size=(8, 3))
        integ.reset_transport_stats()
        for _ in range(3):  # three frames over the same timestep
            integrate_steady(gv, seeds, 8, 0.05, backend="parallel", workers=2)
        stats = transport_stats()
        assert stats["parallel_calls"] == 3
        if stats["field_transport"] == "shm":
            assert stats["fields_exported"] == 1
            assert stats["field_bytes_shipped"] == gv.nbytes
        else:  # pragma: no cover - platform without shared memory
            assert stats["field_bytes_shipped"] >= gv.nbytes

    def test_shm_and_pickle_agree(self):
        rng = np.random.default_rng(8)
        gv = np.ascontiguousarray(rng.normal(0, 0.5, size=(10, 10, 8, 3)))
        seeds = rng.uniform(0, 7, size=(6, 3))
        p_shm, l_shm = integrate_steady(
            gv, seeds, 10, 0.05, backend="parallel", workers=2
        )
        configure_pools(field_transport="pickle")
        try:
            integ.reset_transport_stats()
            p_pkl, l_pkl = integrate_steady(
                gv, seeds, 10, 0.05, backend="parallel", workers=2
            )
            # Pickle transport re-ships the field with every chunk.
            assert transport_stats()["field_bytes_shipped"] == gv.nbytes * 2
        finally:
            configure_pools(field_transport="shm")
        assert np.array_equal(p_shm, p_pkl)
        assert np.array_equal(l_shm, l_pkl)

    def test_start_method_configurable_with_spawn(self):
        if "spawn" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("spawn unavailable")  # pragma: no cover
        rng = np.random.default_rng(9)
        gv = np.ascontiguousarray(rng.normal(0, 0.5, size=(8, 8, 6, 3)))
        seeds = rng.uniform(0, 5, size=(4, 3))
        baseline, lb = integrate_steady(gv, seeds, 6, 0.05, backend="scalar")
        cfg = configure_pools(start_method="spawn")
        assert cfg["start_method"] == "spawn"
        try:
            integ.reset_transport_stats()
            p, l = integrate_steady(
                gv, seeds, 6, 0.05, backend="parallel", workers=2
            )
            stats = transport_stats()
            if stats["field_transport"] == "shm":
                # Residency must hold under spawn too.
                assert stats["fields_exported"] == 1
                assert stats["field_bytes_shipped"] == gv.nbytes
        finally:
            configure_pools(start_method=None)
        assert np.array_equal(p, baseline)
        assert np.array_equal(l, lb)

    def test_configure_rejects_bad_values(self):
        with pytest.raises(ValueError):
            configure_pools(start_method="no-such-method")
        with pytest.raises(ValueError):
            configure_pools(field_transport="carrier-pigeon")

    def test_env_var_selects_start_method(self, monkeypatch):
        configure_pools(start_method=None)
        monkeypatch.setenv("REPRO_POOL_START_METHOD", "spawn")
        assert pool_start_method() == "spawn"
        monkeypatch.setenv("REPRO_POOL_START_METHOD", "bogus")
        assert pool_start_method() in ("fork", "spawn")  # ignored if unknown


class TestParticlePathWorkspace:
    def test_workspace_matches_plain(self, dataset):
        seeds = np.array([[3.0, 3.0, 2.0], [7.0, 6.0, 3.0], [5.0, 5.0, 1.0]])
        plain = compute_particle_paths(dataset, 0, seeds, n_steps=4)
        ws = compute_particle_paths(
            dataset, 0, seeds, n_steps=4, workspace=IntegratorWorkspace()
        )
        assert np.array_equal(plain.grid_paths, ws.grid_paths)
        assert np.array_equal(plain.lengths, ws.lengths)


class TestComputeModel:
    def test_fit_recovers_parameters(self):
        model = ComputeModel(launch_overhead=2e-3, per_point_seconds=5e-7)
        launches = np.array([1, 2, 4, 8, 16])
        points = np.array([1000, 1000, 2000, 4000, 8000])
        times = np.array(
            [model.seconds(int(n), int(p)) for n, p in zip(launches, points)]
        )
        fitted = ComputeModel.fit(launches, points, times)
        assert fitted.launch_overhead == pytest.approx(2e-3, rel=1e-6)
        assert fitted.per_point_seconds == pytest.approx(5e-7, rel=1e-6)

    def test_predicted_speedup(self):
        model = ComputeModel(launch_overhead=1e-2, per_point_seconds=1e-6)
        # 8 rakes, launch-dominated: fusing approaches 8x.
        assert model.predicted_speedup(8, 1000) > 7.0
        # Point-dominated: fusing buys little.
        assert model.predicted_speedup(8, 10_000_000) < 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeModel(launch_overhead=-1.0, per_point_seconds=0.0)
        with pytest.raises(ValueError):
            ComputeModel(launch_overhead=0.0, per_point_seconds=float("nan"))
        model = ComputeModel(launch_overhead=1e-3, per_point_seconds=1e-7)
        with pytest.raises(ValueError):
            model.seconds(-1, 10)
        with pytest.raises(ValueError):
            ComputeModel.fit([1], [10], [0.1])
        with pytest.raises(ValueError):
            ComputeModel.fit([1, 2], [10], [0.1, 0.2])


class TestPipelineIntegration:
    def test_published_frame_carries_batch_provenance(self, dataset):
        from repro.core import Environment
        from repro.core.framestore import FrameStore
        from repro.core.pipeline import FramePipeline

        engine = ComputeEngine(dataset, ToolSettings(streamline_steps=10))
        env = Environment(dataset.n_timesteps)
        env.add_rake(Rake([2, 5, 2], [9, 5, 2], n_seeds=4))
        env.add_rake(Rake([5, 2, 2], [5, 9, 2], n_seeds=3))
        store = FrameStore()
        pipe = FramePipeline(engine, env, store, threaded=False)
        frame = pipe.produce_inline()
        assert frame.batch["fused"] is True
        assert frame.batch["fused_batch_size"] == 7
        assert frame.batch["points_per_second"] > 0
        stats = pipe.stats()
        assert stats["compute"]["fused_batch_size"] == 7
        assert stats["compute"]["backend"] == "vector"
        assert "field_bytes_shipped" in stats["compute"]["transport"]
        # The pipeline wired its registry into the engine.
        assert engine.registry is pipe.registry
        gauges = pipe.registry.snapshot()["gauges"]
        assert gauges["engine.fused_batch_size"] == 7.0
        assert gauges["engine.points_per_second"] > 0
