"""Tests for rake geometry and grab semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracers import GrabPoint, Rake

vec3 = st.tuples(*[st.floats(-10, 10, allow_nan=False)] * 3).map(np.array)


class TestGeometry:
    def test_seed_distribution(self):
        r = Rake([0, 0, 0], [0, 0, 9], n_seeds=10)
        seeds = r.seeds()
        assert seeds.shape == (10, 3)
        np.testing.assert_allclose(seeds[:, 2], np.arange(10))
        np.testing.assert_allclose(seeds[:, :2], 0.0)

    def test_single_seed_is_midpoint(self):
        r = Rake([0, 0, 0], [2, 0, 0], n_seeds=1)
        np.testing.assert_allclose(r.seeds(), [[1, 0, 0]])

    def test_center_and_length(self):
        r = Rake([0, 0, 0], [3, 4, 0])
        np.testing.assert_allclose(r.center, [1.5, 2, 0])
        assert r.length == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Rake([0, 0, 0], [1, 0, 0], n_seeds=0)
        with pytest.raises(ValueError):
            Rake([0, 0, 0], [1, 0, 0], kind="isosurface")
        with pytest.raises(ValueError):
            Rake([0, 0], [1, 0, 0])

    def test_endpoints_are_copies(self):
        a = np.zeros(3)
        r = Rake(a, [1, 0, 0])
        r.move(GrabPoint.CENTER, [5, 5, 5])
        np.testing.assert_allclose(a, 0.0)


class TestGrabSemantics:
    def test_center_grab_translates_rigidly(self):
        r = Rake([0, 0, 0], [2, 0, 0])
        r.move(GrabPoint.CENTER, [5, 5, 5])
        np.testing.assert_allclose(r.end_a, [4, 5, 5])
        np.testing.assert_allclose(r.end_b, [6, 5, 5])

    def test_end_grab_keeps_other_end(self):
        r = Rake([0, 0, 0], [2, 0, 0])
        r.move(GrabPoint.END_A, [0, 3, 0])
        np.testing.assert_allclose(r.end_a, [0, 3, 0])
        np.testing.assert_allclose(r.end_b, [2, 0, 0])

    @given(vec3, vec3, vec3)
    @settings(max_examples=40)
    def test_center_move_preserves_length(self, a, b, target):
        r = Rake(a, b)
        before = r.length
        r.move(GrabPoint.CENTER, target)
        assert r.length == pytest.approx(before, abs=1e-9)
        np.testing.assert_allclose(r.center, target, atol=1e-9)

    @given(vec3, vec3, vec3)
    @settings(max_examples=40)
    def test_end_b_move_fixes_end_a(self, a, b, target):
        r = Rake(a, b)
        r.move(GrabPoint.END_B, target)
        np.testing.assert_allclose(r.end_a, a)
        np.testing.assert_allclose(r.end_b, target)

    def test_grab_position(self):
        r = Rake([0, 0, 0], [2, 0, 0])
        np.testing.assert_allclose(r.grab_position(GrabPoint.CENTER), [1, 0, 0])
        np.testing.assert_allclose(r.grab_position(GrabPoint.END_A), [0, 0, 0])
        np.testing.assert_allclose(r.grab_position(GrabPoint.END_B), [2, 0, 0])

    def test_move_validation(self):
        r = Rake([0, 0, 0], [2, 0, 0])
        with pytest.raises(ValueError):
            r.move(GrabPoint.CENTER, [1, 2])


class TestNearestGrab:
    def test_prefers_closest(self):
        r = Rake([0, 0, 0], [10, 0, 0])
        assert r.nearest_grab([0.2, 0, 0], 1.0) is GrabPoint.END_A
        assert r.nearest_grab([9.9, 0, 0], 1.0) is GrabPoint.END_B
        assert r.nearest_grab([5.1, 0, 0], 1.0) is GrabPoint.CENTER

    def test_out_of_reach(self):
        r = Rake([0, 0, 0], [10, 0, 0])
        assert r.nearest_grab([0, 5, 0], 1.0) is None

    def test_ties_resolve_deterministically(self):
        r = Rake([0, 0, 0], [0, 0, 0], n_seeds=1)
        # All grab points coincide; any is acceptable but it must not crash.
        assert r.nearest_grab([0, 0, 0], 1.0) is not None


class TestSerialization:
    def test_roundtrip(self):
        r = Rake([1, 2, 3], [4, 5, 6], n_seeds=7, kind="streakline", rake_id=42)
        back = Rake.from_dict(r.to_dict())
        np.testing.assert_allclose(back.end_a, r.end_a)
        np.testing.assert_allclose(back.end_b, r.end_b)
        assert back.n_seeds == 7
        assert back.kind == "streakline"
        assert back.rake_id == 42

    def test_dict_is_json_safe(self):
        import json

        r = Rake([1, 2, 3], [4, 5, 6])
        json.dumps(r.to_dict())
