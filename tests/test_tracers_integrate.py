"""Tests for the RK2 integration core and its backends."""

import numpy as np
import pytest

from repro.flow import MemoryDataset, RigidRotation, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid
from repro.tracers import BACKENDS, advance_rk2, integrate_paths, integrate_steady


def make_dataset(field, shape=(9, 9, 5), lo=(-2, -2, 0), hi=(2, 2, 1), times=(0.0,)):
    grid = cartesian_grid(shape, lo=lo, hi=hi)
    vel = sample_on_grid(field, grid, np.asarray(times), dtype=np.float64)
    return MemoryDataset(grid, vel, dt=times[1] - times[0] if len(times) > 1 else 1.0)


@pytest.fixture(scope="module")
def rotation_gv():
    """Grid-coordinate velocity of a rigid rotation on a symmetric grid."""
    ds = make_dataset(RigidRotation(omega=[0, 0, 1.0]), shape=(17, 17, 3))
    return ds, ds.grid_velocity(0)


class TestAdvanceRK2:
    def test_uniform_flow_is_exact(self):
        ds = make_dataset(UniformFlow([1.0, 0.0, 0.0]), hi=(2, 2, 1))
        gv = ds.grid_velocity(0)
        # Physical v=(1,0,0); grid spacing 0.5 in x (9 nodes over 4) -> grid
        # velocity 2 in i.
        start = np.array([[1.0, 4.0, 2.0]])
        out = advance_rk2(gv, start, 0.1)
        np.testing.assert_allclose(out, [[1.2, 4.0, 2.0]], atol=1e-12)

    def test_rk2_is_second_order(self, rotation_gv):
        """Halving dt reduces the fixed-horizon error ~4x.

        The rotation field is affine, so trilinear interpolation is exact
        and the only error is the time integrator's.
        """
        _, gv = rotation_gv
        start = np.array([[11.0, 8.0, 1.0]])  # radius 3 grid units
        horizon = 4.0
        angle = horizon  # omega = 1 in grid units on this symmetric grid
        exact = np.array(
            [8.0 + 3.0 * np.cos(angle), 8.0 + 3.0 * np.sin(angle), 1.0]
        )

        def error(n):
            dt = horizon / n
            coords = start.copy()
            for _ in range(n):
                coords = advance_rk2(gv, coords, dt)
            return np.linalg.norm(coords[0] - exact)

        e1, e2 = error(128), error(256)
        ratio = e1 / e2
        assert 3.5 < ratio < 4.5, f"convergence ratio {ratio}"

    def test_circular_orbit_stays_near_circle(self, rotation_gv):
        _, gv = rotation_gv
        coords = np.array([[10.0, 8.0, 1.0]])
        r0 = 2.0
        for _ in range(100):
            coords = advance_rk2(gv, coords, 0.02)
        r = np.linalg.norm(coords[0, :2] - [8.0, 8.0])
        np.testing.assert_allclose(r, r0, rtol=1e-3)


class TestIntegrateSteady:
    def test_shapes_and_lengths(self, rotation_gv):
        _, gv = rotation_gv
        seeds = np.array([[10.0, 8.0, 1.0], [12.0, 8.0, 1.0]])
        paths, lengths = integrate_steady(gv, seeds, 50, 0.02)
        assert paths.shape == (2, 51, 3)
        assert lengths.tolist() == [51, 51]
        np.testing.assert_allclose(paths[:, 0], seeds)

    def test_particle_dies_at_boundary(self):
        ds = make_dataset(
            UniformFlow([1.0, 0.0, 0.0]), shape=(5, 5, 3), lo=(0, 0, 0), hi=(4, 4, 1)
        )
        gv = ds.grid_velocity(0)
        seeds = np.array([[3.0, 2.0, 1.0]])
        paths, lengths = integrate_steady(gv, seeds, 10, 0.5)
        # Grid velocity 1/grid-unit; from i=3, steps of 0.5: dies past i=4.
        assert lengths[0] == 3  # seed + 2 recorded steps (3.5, 4.0)
        # Frozen at last valid vertex thereafter.
        np.testing.assert_allclose(paths[0, lengths[0] - 1 :, 0], 4.0)

    def test_seed_outside_domain_never_moves(self, rotation_gv):
        _, gv = rotation_gv
        seeds = np.array([[-5.0, 0.0, 1.0]])
        paths, lengths = integrate_steady(gv, seeds, 5, 0.1)
        assert lengths[0] == 1
        np.testing.assert_allclose(paths[0], np.tile(seeds[0], (6, 1)))

    def test_zero_steps(self, rotation_gv):
        _, gv = rotation_gv
        seeds = np.array([[8.0, 8.0, 1.0]])
        paths, lengths = integrate_steady(gv, seeds, 0, 0.1)
        assert paths.shape == (1, 1, 3)
        assert lengths[0] == 1

    def test_input_validation(self, rotation_gv):
        _, gv = rotation_gv
        with pytest.raises(ValueError):
            integrate_steady(gv, np.zeros((2, 2)), 5, 0.1)
        with pytest.raises(ValueError):
            integrate_steady(gv, np.zeros((2, 3)), -1, 0.1)
        with pytest.raises(ValueError):
            integrate_steady(gv, np.zeros((2, 3)), 5, 0.1, backend="cuda")

    def test_seeds_not_mutated(self, rotation_gv):
        _, gv = rotation_gv
        seeds = np.array([[10.0, 8.0, 1.0]])
        original = seeds.copy()
        integrate_steady(gv, seeds, 10, 0.1)
        np.testing.assert_array_equal(seeds, original)


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def scenario(self):
        ds = make_dataset(
            RigidRotation(omega=[0, 0, 1.0]) + UniformFlow([0.1, 0.0, 0.05]),
            shape=(17, 17, 9),
            lo=(-2, -2, -1),
            hi=(2, 2, 1),
        )
        gv = ds.grid_velocity(0)
        rng = np.random.default_rng(5)
        seeds = rng.uniform([4, 4, 2], [12, 12, 6], size=(37, 3))
        ref = integrate_steady(gv, seeds, 40, 0.03, backend="vector")
        return gv, seeds, ref

    def test_vector_strip_bit_identical(self, scenario):
        gv, seeds, (ref_paths, ref_len) = scenario
        paths, lengths = integrate_steady(
            gv, seeds, 40, 0.03, backend="vector-strip", strip=8
        )
        np.testing.assert_array_equal(paths, ref_paths)
        np.testing.assert_array_equal(lengths, ref_len)

    def test_scalar_matches_vector(self, scenario):
        gv, seeds, (ref_paths, ref_len) = scenario
        paths, lengths = integrate_steady(gv, seeds, 40, 0.03, backend="scalar")
        np.testing.assert_array_equal(lengths, ref_len)
        np.testing.assert_allclose(paths, ref_paths, atol=1e-10)

    def test_parallel_matches_vector(self, scenario):
        gv, seeds, (ref_paths, ref_len) = scenario
        paths, lengths = integrate_steady(
            gv, seeds, 40, 0.03, backend="parallel", workers=2
        )
        np.testing.assert_array_equal(lengths, ref_len)
        np.testing.assert_allclose(paths, ref_paths, atol=1e-10)

    def test_vector_group_matches_vector(self, scenario):
        gv, seeds, (ref_paths, ref_len) = scenario
        paths, lengths = integrate_steady(
            gv, seeds, 40, 0.03, backend="vector-group", workers=2
        )
        np.testing.assert_array_equal(lengths, ref_len)
        np.testing.assert_allclose(paths, ref_paths, atol=1e-12)

    def test_all_backends_listed(self):
        assert set(BACKENDS) == {
            "vector",
            "vector-strip",
            "scalar",
            "parallel",
            "vector-group",
        }

    def test_single_worker_parallel_degenerates(self, scenario):
        gv, seeds, (ref_paths, _) = scenario
        paths, _ = integrate_steady(
            gv, seeds[:3], 10, 0.03, backend="parallel", workers=1
        )
        np.testing.assert_allclose(paths, ref_paths[:3, :11], atol=1e-10)


class TestIntegratePaths:
    def test_unsteady_uses_successive_timesteps(self):
        # Field switches from +x to +y between timesteps: the particle path
        # must bend, which a frozen-field streamline cannot.
        grid = cartesian_grid((9, 9, 3), lo=(0, 0, 0), hi=(8, 8, 2))
        vel = np.zeros((3, 9, 9, 3, 3))
        vel[0, ..., 0] = 1.0  # t0: +x
        vel[1, ..., 1] = 1.0  # t1: +y
        vel[2, ..., 1] = 1.0
        ds = MemoryDataset(grid, vel, dt=1.0)
        seeds = np.array([[2.0, 2.0, 1.0]])
        paths, lengths = integrate_paths(
            ds.grid_velocity, seeds, 0, 2, ds.n_timesteps, ds.dt
        )
        assert lengths[0] == 3
        # Step 1: Heun average of +x (t0) and +y (t1) fields.
        np.testing.assert_allclose(paths[0, 1], [2.5, 2.5, 1.0], atol=1e-12)
        # Step 2: both stages +y.
        np.testing.assert_allclose(paths[0, 2], [2.5, 3.5, 1.0], atol=1e-12)

    def test_length_clamped_by_available_timesteps(self):
        ds = make_dataset(
            UniformFlow([0.1, 0, 0]), shape=(9, 9, 3), hi=(8, 8, 2),
            times=np.arange(4) * 1.0,
        )
        seeds = np.array([[1.0, 1.0, 1.0]])
        paths, lengths = integrate_paths(
            ds.grid_velocity, seeds, 2, 100, ds.n_timesteps, ds.dt
        )
        assert paths.shape[1] == 2  # t0=2 leaves one step (to t=3)
        assert lengths[0] == 2

    def test_t0_out_of_range(self):
        ds = make_dataset(UniformFlow(), times=np.arange(3) * 1.0)
        with pytest.raises(IndexError):
            integrate_paths(ds.grid_velocity, np.zeros((1, 3)), 3, 1, 3, 1.0)

    def test_bad_seed_shape(self):
        ds = make_dataset(UniformFlow(), times=np.arange(3) * 1.0)
        with pytest.raises(ValueError):
            integrate_paths(ds.grid_velocity, np.zeros((1, 2)), 0, 1, 3, 1.0)

    def test_steady_field_path_matches_streamline(self):
        """In a steady dataset, particle paths equal streamlines."""
        ds = make_dataset(
            RigidRotation(omega=[0, 0, 1.0]),
            shape=(17, 17, 3),
            times=np.arange(11) * 0.05,
        )
        seeds = np.array([[10.0, 8.0, 1.0]])
        p_paths, _ = integrate_paths(
            ds.grid_velocity, seeds, 0, 10, ds.n_timesteps, ds.dt
        )
        s_paths, _ = integrate_steady(ds.grid_velocity(0), seeds, 10, ds.dt)
        np.testing.assert_allclose(p_paths, s_paths, atol=1e-12)
