"""Tests for repro.util.timers."""

import math
import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import FrameTimer, Stopwatch, TimingStats

durations = st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=50)


class TestTimingStats:
    def test_empty(self):
        s = TimingStats()
        assert s.count == 0
        assert s.rate == 0.0
        assert s.summary() == "no samples"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimingStats().add(-1.0)

    @given(durations)
    def test_matches_numpy(self, values):
        s = TimingStats()
        for v in values:
            s.add(v)
        np.testing.assert_allclose(s.mean, np.mean(values), atol=1e-12)
        np.testing.assert_allclose(s.total, np.sum(values), atol=1e-9)
        assert s.min == min(values)
        assert s.max == max(values)
        if len(values) > 1:
            np.testing.assert_allclose(
                s.variance, np.var(values, ddof=1), atol=1e-10
            )

    @given(durations, durations)
    def test_merge_equals_concatenation(self, a, b):
        sa, sb, sc = TimingStats(), TimingStats(), TimingStats()
        for v in a:
            sa.add(v)
            sc.add(v)
        for v in b:
            sb.add(v)
            sc.add(v)
        sa.merge(sb)
        np.testing.assert_allclose(sa.mean, sc.mean, atol=1e-10)
        np.testing.assert_allclose(sa.variance, sc.variance, atol=1e-8)
        assert sa.count == sc.count

    def test_merge_into_empty(self):
        a, b = TimingStats(), TimingStats()
        b.add(2.0)
        a.merge(b)
        assert a.count == 1 and a.mean == 2.0

    def test_merge_empty_is_noop(self):
        a = TimingStats()
        a.add(1.0)
        a.merge(TimingStats())
        assert a.count == 1

    def test_rate(self):
        s = TimingStats()
        s.add(0.1)
        assert math.isclose(s.rate, 10.0)


class TestStopwatch:
    def test_records_elapsed(self):
        stats = TimingStats()
        with Stopwatch(stats) as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009
        assert stats.count == 1

    def test_standalone(self):
        with Stopwatch() as sw:
            pass
        assert sw.elapsed >= 0.0


class TestFrameTimer:
    def test_budget_tracking(self):
        ft = FrameTimer(budget=0.125)
        ft.frame(0.1)
        ft.frame(0.2)
        ft.frame(0.125)
        assert ft.frames_within_budget == 2
        assert math.isclose(ft.within_budget_fraction, 2 / 3)

    def test_default_budget_is_paper_eighth_second(self):
        assert FrameTimer().budget == 0.125

    def test_stage_accumulates(self):
        ft = FrameTimer()
        with ft.stage("compute"):
            pass
        with ft.stage("compute"):
            pass
        assert ft.stages["compute"].count == 2

    def test_report_mentions_stages(self):
        ft = FrameTimer()
        with ft.stage("net"):
            pass
        ft.frame(0.05)
        rep = ft.report()
        assert "net" in rep and "budget" in rep

    def test_empty_fraction(self):
        assert FrameTimer().within_budget_fraction == 0.0
