"""Property-based tests for the renderer's core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.render import Camera, Framebuffer, WriteMask
from repro.util import compose, look_at, rotation_z, translation

finite3 = st.tuples(
    st.floats(-10, 10, allow_nan=False),
    st.floats(-10, 10, allow_nan=False),
    st.floats(-10, 10, allow_nan=False),
).map(np.array)

samples = st.lists(
    st.tuples(
        st.integers(-5, 70),  # x (may be out of bounds)
        st.integers(-5, 50),  # y
        st.floats(0.1, 100.0, allow_nan=False),  # depth
        st.tuples(*[st.integers(0, 255)] * 3),  # color
    ),
    min_size=1,
    max_size=40,
)


class TestScatterProperties:
    @given(samples)
    @settings(max_examples=60)
    def test_writemask_never_touches_masked_channels(self, pts):
        fb = Framebuffer(64, 48)
        fb.color[..., 1] = 123  # sentinel in the green plane
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        zs = np.array([p[2] for p in pts])
        cols = np.array([p[3] for p in pts], dtype=np.uint8)
        fb.scatter(xs, ys, zs, cols, WriteMask(red=True, green=False, blue=True))
        assert np.all(fb.color[..., 1] == 123)

    @given(samples)
    @settings(max_examples=60)
    def test_depth_buffer_never_increases(self, pts):
        fb = Framebuffer(64, 48)
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        zs = np.array([p[2] for p in pts])
        cols = np.array([p[3] for p in pts], dtype=np.uint8)
        fb.scatter(xs, ys, zs, cols)
        before = fb.depth.copy()
        fb.scatter(xs, ys, zs + 1.0, cols)  # strictly farther samples
        assert np.all(fb.depth <= before + 1e-6)

    @given(samples)
    @settings(max_examples=60)
    def test_written_pixel_holds_nearest_sample_color(self, pts):
        fb = Framebuffer(64, 48)
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        zs = np.array([p[2] for p in pts], dtype=np.float32)
        cols = np.array([p[3] for p in pts], dtype=np.uint8)
        fb.scatter(xs, ys, zs, cols)
        inb = (xs >= 0) & (xs < 64) & (ys >= 0) & (ys < 48)
        for x, y in {(int(a), int(b)) for a, b in zip(xs[inb], ys[inb])}:
            here = inb & (xs == x) & (ys == y)
            zmin = zs[here].min()
            assert fb.depth[y, x] == pytest.approx(zmin)
            winners = here & (zs == zmin)
            candidate_colors = cols[winners]
            assert any(
                np.array_equal(fb.color[y, x], c) for c in candidate_colors
            )


class TestProjectionProperties:
    @given(finite3)
    @settings(max_examples=80)
    def test_depth_equals_view_distance(self, p):
        cam = Camera(look_at([0, 20, 0], [0, 0, 0], up=[0, 0, 1]))
        _, depth, valid = cam.project(p[None, :], 64, 48)
        expected = 20.0 - p[1]
        if cam.near <= expected <= cam.far:
            assert valid[0]
            assert depth[0] == pytest.approx(expected, abs=1e-9)
        else:
            assert not valid[0]

    @given(finite3, st.floats(-np.pi, np.pi, allow_nan=False))
    @settings(max_examples=60)
    def test_rigid_motion_of_camera_and_scene_is_invariant(self, p, angle):
        """Moving camera and world together leaves the projection fixed."""
        assume(abs(p[1]) < 9.0)
        base = look_at([0, 15, 0], [0, 0, 0], up=[0, 0, 1])
        cam1 = Camera(base)
        xy1, d1, v1 = cam1.project(p[None, :], 64, 48)
        m = compose(translation([3.0, -2.0, 1.0]), rotation_z(angle))
        cam2 = Camera(m @ base)
        p2 = (m[:3, :3] @ p) + m[:3, 3]
        xy2, d2, v2 = cam2.project(p2[None, :], 64, 48)
        assert v1[0] == v2[0]
        if v1[0]:
            np.testing.assert_allclose(xy1, xy2, atol=1e-6)
            np.testing.assert_allclose(d1, d2, atol=1e-9)

    @given(st.floats(0.01, 0.4, allow_nan=False))
    @settings(max_examples=40)
    def test_stereo_disparity_sign_and_monotonicity(self, ipd):
        """Larger IPD gives larger horizontal disparity, never negative."""
        cam = Camera(look_at([0, 10, 0], [0, 0, 0], up=[0, 0, 1]))
        p = np.array([[0.0, 0.0, 0.0]])
        xl, _, _ = cam.with_eye_offset(-ipd / 2).project(p, 640, 480)
        xr, _, _ = cam.with_eye_offset(+ipd / 2).project(p, 640, 480)
        disparity = xl[0, 0] - xr[0, 0]
        assert disparity > 0
        xl2, _, _ = cam.with_eye_offset(-ipd).project(p, 640, 480)
        xr2, _, _ = cam.with_eye_offset(+ipd).project(p, 640, 480)
        assert (xl2[0, 0] - xr2[0, 0]) > disparity
