"""Tests for repro.util.ringbuffer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import RingBuffer


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0, 3)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            RingBuffer(4, 0)

    def test_empty(self):
        rb = RingBuffer(4, 3)
        assert len(rb) == 0
        assert rb.view().shape == (0, 3)
        with pytest.raises(IndexError):
            rb.oldest()
        with pytest.raises(IndexError):
            rb.newest()

    def test_append_and_view(self):
        rb = RingBuffer(3, 2)
        rb.append([1.0, 2.0])
        rb.append([3.0, 4.0])
        np.testing.assert_allclose(rb.view(), [[1, 2], [3, 4]])
        np.testing.assert_allclose(rb.oldest(), [1, 2])
        np.testing.assert_allclose(rb.newest(), [3, 4])

    def test_eviction_keeps_newest(self):
        rb = RingBuffer(3, 1)
        for i in range(5):
            rb.append([float(i)])
        assert rb.full
        np.testing.assert_allclose(rb.view()[:, 0], [2, 3, 4])

    def test_clear(self):
        rb = RingBuffer(3, 1)
        rb.append([1.0])
        rb.clear()
        assert len(rb) == 0


class TestExtend:
    def test_extend_small(self):
        rb = RingBuffer(5, 1)
        rb.extend(np.arange(3.0)[:, None])
        np.testing.assert_allclose(rb.view()[:, 0], [0, 1, 2])

    def test_extend_wrapping(self):
        rb = RingBuffer(4, 1)
        rb.extend(np.arange(3.0)[:, None])
        rb.extend(np.array([[10.0], [11.0], [12.0]]))
        np.testing.assert_allclose(rb.view()[:, 0], [2, 10, 11, 12])

    def test_extend_larger_than_capacity(self):
        rb = RingBuffer(3, 1)
        rb.extend(np.arange(10.0)[:, None])
        np.testing.assert_allclose(rb.view()[:, 0], [7, 8, 9])

    def test_extend_empty_noop(self):
        rb = RingBuffer(3, 1)
        rb.extend(np.empty((0, 1)))
        assert len(rb) == 0

    @given(
        st.integers(1, 8),
        st.lists(st.lists(st.integers(0, 100), min_size=0, max_size=12), max_size=8),
    )
    def test_matches_reference_model(self, capacity, batches):
        """Property: ring buffer == trailing window of everything appended."""
        rb = RingBuffer(capacity, 1)
        reference: list[float] = []
        for batch in batches:
            arr = np.array(batch, dtype=np.float64)[:, None]
            rb.extend(arr)
            reference.extend(float(x) for x in batch)
            expected = reference[-capacity:]
            np.testing.assert_allclose(rb.view()[:, 0], expected)
            assert len(rb) == len(expected)

    @given(st.integers(1, 6), st.lists(st.integers(0, 50), min_size=1, max_size=30))
    def test_append_matches_reference_model(self, capacity, values):
        rb = RingBuffer(capacity, 1)
        for i, v in enumerate(values):
            rb.append([float(v)])
            expected = [float(x) for x in values[: i + 1]][-capacity:]
            np.testing.assert_allclose(rb.view()[:, 0], expected)
