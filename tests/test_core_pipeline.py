"""The figure-8 frame pipeline: store, producer, and RPC seam.

Covers the guarantees the refactor introduced:

* published frames are immutable — one client's mutations can never
  corrupt another client's response (the shallow-copy bug regression);
* vertices are encoded exactly once per produced frame, however many
  clients read it;
* the governor, now fed on the producer thread, still converges under a
  slow engine;
* environment mutations invalidate and republish promptly (bounded
  staleness);
* the serial fallback mode serves through the identical stage code.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    FrameBudgetGovernor,
    FramePipeline,
    FrameStore,
    PublishedFrame,
    ToolSettings,
    WindtunnelClient,
    WindtunnelServer,
)
from repro.core.framestore import encode_paths
from repro.dlib.protocol import PreEncoded, decode_value, encode_value
from repro.flow import MemoryDataset, RigidRotation, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid

from tests import wait_until


def make_dataset(n_times=8):
    grid = cartesian_grid((9, 9, 5), lo=(0, 0, 0), hi=(8, 8, 4))
    field = RigidRotation(omega=[0, 0, 0.5], center=[4, 4, 0]) + UniformFlow(
        [0.1, 0, 0]
    )
    vel = sample_on_grid(field, grid, np.arange(n_times) * 0.2, dtype=np.float64)
    return MemoryDataset(grid, vel, dt=0.2)


@pytest.fixture(scope="module")
def dataset():
    return make_dataset()


@pytest.fixture()
def server(dataset):
    clock = {"now": 0.0}
    srv = WindtunnelServer(
        dataset,
        settings=ToolSettings(streamline_steps=20, streakline_length=8),
        time_speed=1.0,
        time_fn=lambda: clock["now"],
    )
    srv._test_clock = clock
    srv.start()
    yield srv
    srv.stop()


class TestPreEncoded:
    def test_fragment_decodes_to_original_value(self):
        value = {"a": np.arange(6, dtype=np.float32).reshape(2, 3), "b": [1, "x"]}
        frag = PreEncoded.wrap(value)
        out = frag.decode()
        assert out["b"] == [1, "x"]
        np.testing.assert_array_equal(out["a"], value["a"])

    def test_fragment_splices_into_enclosing_value(self):
        inner = {"k": np.ones(4, dtype=np.float32)}
        spliced = {"paths": PreEncoded.wrap(inner), "n": 3}
        out = decode_value(encode_value(spliced))
        assert out["n"] == 3
        np.testing.assert_array_equal(out["paths"]["k"], inner["k"])


class TestFrameStore:
    def test_publish_stamps_monotonic_seq(self):
        store = FrameStore()
        frames = [
            store.publish(
                PublishedFrame(
                    version=1, timestep=t, seq=0,
                    paths={}, paths_wire=PreEncoded.wrap({}),
                    compute_seconds=0.0,
                )
            )
            for t in range(3)
        ]
        assert [f.seq for f in frames] == [1, 2, 3]
        assert store.latest().timestep == 2
        assert store.previous().timestep == 1

    def test_wait_beyond_times_out_without_publication(self):
        store = FrameStore()
        assert store.wait_beyond(0, timeout=0.05) is None

    def test_wait_beyond_wakes_on_publish(self):
        # Event-driven, not sleep-paced (see tests/__init__.py): the
        # assertion holds under either interleaving — a reader parked in
        # wait_beyond is woken by publish, and a reader that arrives
        # after the publish returns immediately (seq already advanced).
        store = FrameStore()
        entered = threading.Event()
        got = []

        def reader():
            entered.set()
            got.append(store.wait_beyond(0, timeout=5.0))

        t = threading.Thread(target=reader)
        t.start()
        assert entered.wait(2.0)
        store.publish(
            PublishedFrame(
                version=1, timestep=0, seq=0,
                paths={}, paths_wire=PreEncoded.wrap({}),
                compute_seconds=0.0,
            )
        )
        t.join(timeout=5.0)
        assert got and got[0].seq == 1


class TestImmutablePublication:
    def test_published_arrays_are_read_only(self, server):
        with WindtunnelClient(*server.address) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            c.fetch_frame()
            frame = server.store.latest()
            entry = next(iter(frame.paths.values()))
            assert not entry["vertices"].flags.writeable
            assert not entry["lengths"].flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                entry["vertices"][...] = 0.0

    def test_client_mutation_cannot_corrupt_other_clients(self, server):
        """Regression: the old RPC path shared one mutable paths dict
        across responses — scribbling on client A's arrays changed what
        client B received from the cache."""
        with WindtunnelClient(*server.address) as a, WindtunnelClient(
            *server.address
        ) as b:
            a.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            sa = a.fetch_frame()
            pa = next(iter(sa["paths"].values()))["vertices"]
            expected = pa.copy()
            pa[...] = -777.0  # client A goes rogue
            sb = b.fetch_frame()
            assert sb["cached"]  # same shared frame, no recompute
            pb = next(iter(sb["paths"].values()))["vertices"]
            np.testing.assert_array_equal(pb, expected)
            # The published master copy is untouched too.
            master = next(iter(server.store.latest().paths.values()))["vertices"]
            np.testing.assert_array_equal(master, expected)


class TestEncodeOnce:
    def test_encode_count_equals_frames_computed(self, server):
        clients = [WindtunnelClient(*server.address) for _ in range(4)]
        try:
            clients[0].add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            produced_before = server.pipeline.frames_produced
            for c in clients:
                c.fetch_frame()
            stats = clients[0].pipeline_stats()
            assert server.pipeline.frames_produced == produced_before + 1
            assert stats["frames_encoded"] == stats["frames_produced"]
            assert stats["stages"]["encode"]["count"] == stats["frames_produced"]
            assert server.frames_served >= 4
        finally:
            for c in clients:
                c.close()

    def test_encode_happens_per_new_frame_not_per_request(self, server):
        with WindtunnelClient(*server.address) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            c.fetch_frame()
            encoded_one = server.pipeline.frames_encoded
            for _ in range(5):
                c.fetch_frame()  # all cache hits: frozen clock, no mutation
            assert server.pipeline.frames_encoded == encoded_one
            server._test_clock["now"] = 1.0  # clock tick -> one new frame
            c.fetch_frame()
            assert server.pipeline.frames_encoded == encoded_one + 1


class TestGovernorUnderPipeline:
    def test_quality_converges_with_slow_engine(self, dataset):
        """A modeled-slow integrate stage must drive quality down to fit
        the budget — the governor's feedback now runs on the producer."""
        gov = FrameBudgetGovernor(budget=0.01)
        clock = {"now": 0.0}
        with WindtunnelServer(
            dataset,
            settings=ToolSettings(streamline_steps=30),
            governor=gov,
            time_fn=lambda: clock["now"],
            stage_cost={"integrate": 0.03},  # 3x the budget, every frame
        ) as srv:
            with WindtunnelClient(*srv.address) as c:
                c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=5)
                for i in range(6):
                    c.fetch_frame()
                    clock["now"] += 1.0  # force a fresh frame each round
                stats = c.pipeline_stats()
                assert stats["governor"]["quality"] < 0.5
                assert stats["governor"]["frames_recorded"] >= 6
                assert stats["governor"]["over_budget_fraction"] == 1.0

    def test_pipeline_stats_consistent_with_serving(self, server):
        with WindtunnelClient(*server.address) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            c.fetch_frame()
            stats = c.pipeline_stats()
            assert stats["pipelined"] is True
            assert stats["frames_published"] == stats["frames_encoded"]
            assert stats["publish_seq"] >= 1
            for stage in ("load", "locate", "integrate", "encode"):
                assert stage in stats["stages"]
            assert stats["serial_period_estimate"] >= stats[
                "steady_period_estimate"
            ]


class TestInvalidationRepublish:
    def test_settings_change_republishes_promptly(self, server):
        """wt.set_tool_settings bumps the version; the very next frame a
        client sees must already reflect it (staleness bounded by one
        request/production cycle, not by polling luck)."""
        with WindtunnelClient(*server.address) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=3)
            s0 = c.fetch_frame()
            long_paths = next(iter(s0["paths"].values()))["vertices"].shape[1]
            c.set_tool_settings(streamline_steps=5)
            version = server.env.version
            t0 = time.perf_counter()
            s1 = c.fetch_frame()
            elapsed = time.perf_counter() - t0
            assert s1["cached"] is False
            assert s1["env"]["version"] >= version
            short_paths = next(iter(s1["paths"].values()))["vertices"].shape[1]
            assert short_paths < long_paths
            assert elapsed < 5.0  # one blocking production, not a poll cycle

    def test_rake_mutation_invalidates_published_frame(self, server):
        with WindtunnelClient(*server.address) as c:
            rid = c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=3)
            c.fetch_frame()
            invalidations_before = server.pipeline.invalidations
            c.remove_rake(rid)
            assert server.pipeline.invalidations > invalidations_before
            s = c.fetch_frame()
            assert s["cached"] is False
            assert s["paths"] == {}  # the removed rake is gone from the frame

    def test_env_bump_wakes_producer_without_spurious_compute(self, server):
        """Bumps alone must not burn compute: with nobody asking for a
        frame, an invalidation wakes the producer and nothing else.

        Instead of sleeping and hoping an eager producer had time to
        misbehave, wait until ``idle_cycles`` advances past its
        post-bump value — proof the producer completed full evaluations
        of the bumped state and declined to produce each time.
        """
        with WindtunnelClient(*server.address) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=3)
            c.fetch_frame()
            produced = server.pipeline.frames_produced
            for _ in range(3):
                c.time_control("step", 1)  # version bumps, no frame demand
            idle0 = server.pipeline.idle_cycles
            wait_until(lambda: server.pipeline.idle_cycles >= idle0 + 2)
            assert server.pipeline.frames_produced == produced


class TestSerialFallback:
    def test_serial_mode_serves_identically(self, dataset):
        clock = {"now": 0.0}
        with WindtunnelServer(
            dataset,
            settings=ToolSettings(streamline_steps=20),
            time_fn=lambda: clock["now"],
            pipelined=False,
        ) as srv:
            with WindtunnelClient(*srv.address) as c:
                c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
                s0 = c.fetch_frame()
                assert s0["cached"] is False
                s1 = c.fetch_frame()
                assert s1["cached"] is True
                stats = c.pipeline_stats()
                assert stats["pipelined"] is False
                # Encode-once and immutability hold in serial mode too.
                assert stats["frames_encoded"] == stats["frames_produced"] == 1
                entry = next(iter(srv.store.latest().paths.values()))
                assert not entry["vertices"].flags.writeable


class TestEncodePaths:
    def test_encode_paths_round_trip(self, dataset):
        from repro.core import ComputeEngine
        from repro.tracers.rake import Rake

        engine = ComputeEngine(dataset, ToolSettings(streamline_steps=10))
        rake = Rake([2, 2, 2], [2, 6, 2], n_seeds=3)
        rake.rake_id = 7
        results = engine.compute_rakes({7: rake}, 0)
        paths, wire, n_points = encode_paths({7: "streamline"}, results)
        assert n_points > 0
        assert not paths["7"]["vertices"].flags.writeable
        decoded = wire.decode()
        np.testing.assert_array_equal(
            decoded["7"]["vertices"], paths["7"]["vertices"]
        )
        assert decoded["7"]["kind"] == "streamline"
