"""Tests for the marching-tetrahedra isosurface extractor."""

import numpy as np
import pytest

from repro.flow import MemoryDataset, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid
from repro.tracers.isosurface import (
    extract_isosurface,
    velocity_magnitude,
)


def sphere_field(grid, center):
    d = grid.xyz - np.asarray(center)
    return np.linalg.norm(d, axis=-1)


@pytest.fixture(scope="module")
def grid():
    return cartesian_grid((24, 24, 24), lo=(-1, -1, -1), hi=(1, 1, 1))


def triangle_areas(verts):
    a = verts[:, 1] - verts[:, 0]
    b = verts[:, 2] - verts[:, 0]
    return 0.5 * np.linalg.norm(np.cross(a, b), axis=1)


class TestSphereExtraction:
    def test_vertices_lie_on_the_sphere(self, grid):
        scalar = sphere_field(grid, (0, 0, 0))
        res = extract_isosurface(scalar, 0.6, grid.xyz)
        assert res.n_triangles > 100
        radii = np.linalg.norm(res.vertices.reshape(-1, 3), axis=1)
        # Linear interpolation of ||x|| along cell edges: error O(h^2).
        np.testing.assert_allclose(radii, 0.6, atol=0.01)

    def test_surface_area_close_to_sphere(self, grid):
        scalar = sphere_field(grid, (0, 0, 0))
        res = extract_isosurface(scalar, 0.6, grid.xyz)
        area = triangle_areas(res.vertices).sum()
        exact = 4 * np.pi * 0.6**2
        assert abs(area - exact) / exact < 0.05

    def test_offcenter_sphere(self, grid):
        scalar = sphere_field(grid, (0.2, -0.1, 0.15))
        res = extract_isosurface(scalar, 0.4, grid.xyz)
        radii = np.linalg.norm(
            res.vertices.reshape(-1, 3) - [0.2, -0.1, 0.15], axis=1
        )
        np.testing.assert_allclose(radii, 0.4, atol=0.01)

    def test_level_outside_range_empty(self, grid):
        scalar = sphere_field(grid, (0, 0, 0))
        res = extract_isosurface(scalar, 99.0, grid.xyz)
        assert res.n_triangles == 0
        assert res.vertices.shape == (0, 3, 3)

    def test_plane_extraction_exact(self):
        """A linear field's isosurface is an exact plane."""
        g = cartesian_grid((6, 6, 6), lo=(0, 0, 0), hi=(5, 5, 5))
        scalar = g.xyz[..., 0].copy()  # f = x
        res = extract_isosurface(scalar, 2.25, g.xyz)
        assert res.n_triangles > 0
        np.testing.assert_allclose(res.vertices[..., 0], 2.25, atol=1e-12)
        # Total area equals the domain cross-section (5 x 5).
        np.testing.assert_allclose(
            triangle_areas(res.vertices).sum(), 25.0, atol=1e-9
        )

    def test_degenerate_triangles_are_rare(self, grid):
        scalar = sphere_field(grid, (0, 0, 0))
        res = extract_isosurface(scalar, 0.6, grid.xyz)
        areas = triangle_areas(res.vertices)
        assert (areas > 1e-12).mean() > 0.9


class TestAPI:
    def test_velocity_magnitude(self):
        g = cartesian_grid((4, 4, 4))
        vel = sample_on_grid(UniformFlow([3.0, 4.0, 0.0]), g, [0.0])
        ds = MemoryDataset(g, vel)
        mag = velocity_magnitude(ds, 0)
        np.testing.assert_allclose(mag, 5.0, atol=1e-6)

    def test_wire_bytes(self, grid):
        scalar = sphere_field(grid, (0, 0, 0))
        res = extract_isosurface(scalar, 0.6, grid.xyz)
        assert res.nbytes_wire == res.n_triangles * 36

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            extract_isosurface(np.zeros((3, 3)), 0.0, grid.xyz)
        with pytest.raises(ValueError):
            extract_isosurface(np.zeros((3, 3, 3)), 0.0, grid.xyz)
        with pytest.raises(ValueError):
            extract_isosurface(
                np.zeros((1, 3, 3)), 0.0, np.zeros((1, 3, 3, 3))
            )

    def test_curvilinear_grid_positions(self):
        """Extraction works on a genuinely curvilinear grid."""
        from repro.grid import cylindrical_grid

        g = cylindrical_grid((10, 17, 6), r_inner=0.5, r_outer=4.0)
        scalar = np.linalg.norm(g.xyz[..., :2], axis=-1)  # f = radius
        res = extract_isosurface(scalar, 2.0, g.xyz)
        assert res.n_triangles > 0
        radii = np.linalg.norm(res.vertices.reshape(-1, 3)[:, :2], axis=1)
        np.testing.assert_allclose(radii, 2.0, atol=0.05)
