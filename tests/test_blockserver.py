"""Tier 3 of the cache ladder: the timestep block server fleet.

A :class:`TimestepBlockServer` serves decoded timesteps over the dlib
event loop; :class:`RemoteTimestepSource` stripes a fleet of them behind
the tiered cache's ``source`` seam (docs/caching.md).  Servers run
in-process on their event-loop thread, so staging can be drained
deterministically through the server object.
"""

import numpy as np
import pytest

from repro.diskio import TieredTimestepCache, TimestepLoader, dataset_key
from repro.diskio.blockserver import RemoteTimestepSource, TimestepBlockServer
from repro.dlib import DlibClient, DlibRemoteError
from repro.flow import tapered_cylinder_dataset

SHAPE = (6, 6, 4)
TIMESTEPS = 4


@pytest.fixture(scope="module")
def dataset():
    return tapered_cylinder_dataset(shape=SHAPE, n_timesteps=TIMESTEPS, dt=0.25)


@pytest.fixture
def server(dataset):
    srv = TimestepBlockServer(dataset, stage_timesteps=TIMESTEPS).start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    c = DlibClient(*server.address, timeout=10.0)
    yield c
    c.close()


class TestTimestepBlockServer:
    def test_meta_describes_the_dataset(self, dataset, server, client):
        meta = client.call("block.meta")
        assert meta["dataset_id"] == dataset_key(dataset)
        assert tuple(meta["shape"]) == SHAPE
        assert meta["n_timesteps"] == TIMESTEPS
        assert meta["dt"] == dataset.dt
        assert meta["timestep_nbytes"] == dataset.timestep_nbytes

    def test_read_serves_decoded_timesteps(self, dataset, server, client):
        for t in (0, 3):
            arr = client.call("block.read", server.dataset_id, t)
            np.testing.assert_array_equal(arr, dataset.grid_velocity(t))
        assert server.blocks_served.value == 2

    def test_read_rejects_unknown_dataset(self, server, client):
        with pytest.raises(DlibRemoteError, match="unknown dataset"):
            client.call("block.read", "deadbeef00000000", 0)

    def test_prefetch_stages_in_background(self, dataset, server, client):
        issued = client.call("block.prefetch", server.dataset_id, [1, 2])
        assert issued == 2
        server.loader.drain()  # in-process: wait out the stager
        assert server.loader.cache.peek(1) is not None
        assert server.loader.cache.peek(2) is not None
        # A staged read is a tier-1 hit on the server, not a disk read.
        client.call("block.read", server.dataset_id, 1)
        stats = client.call("block.stats")
        assert stats["hints_received"] == 1
        assert stats["blocks_served"] == 1
        assert stats["l1"]["hits"] >= 1

    def test_stats_carry_tier_counters(self, server, client):
        client.call("block.read", server.dataset_id, 0)
        stats = client.call("block.stats")
        for tier in ("l1", "source"):
            assert {"hits", "misses", "bytes"} <= set(stats[tier])


class TestRemoteTimestepSource:
    @pytest.fixture
    def fleet(self, dataset):
        servers = [
            TimestepBlockServer(dataset, stage_timesteps=TIMESTEPS).start()
            for _ in range(2)
        ]
        source = RemoteTimestepSource(
            [s.address for s in servers], dataset_key(dataset)
        )
        yield servers, source
        source.close()
        for s in servers:
            s.stop()

    def test_reads_stripe_across_servers(self, dataset, fleet):
        servers, source = fleet
        for t in range(TIMESTEPS):
            arr = source.read(t)
            assert not arr.flags.writeable
            np.testing.assert_array_equal(arr, dataset.grid_velocity(t))
        # t mod N ownership: each server saw exactly its half.
        assert servers[0].blocks_served.value == 2
        assert servers[1].blocks_served.value == 2
        assert source.stats.hits == TIMESTEPS

    def test_meta_comes_from_the_first_server(self, dataset, fleet):
        _, source = fleet
        assert source.meta()["dataset_id"] == dataset_key(dataset)

    def test_hints_fan_out_by_owner(self, fleet):
        servers, source = fleet
        source.hint([0, 1, 2, 3])
        assert source.hints_sent == 2  # one batched call per owner
        for s in servers:
            s.loader.drain()
            assert s.hints_received.value == 1
        assert servers[0].loader.cache.peek(2) is not None
        assert servers[1].loader.cache.peek(3) is not None

    def test_hint_swallows_transport_failure(self, fleet):
        servers, source = fleet
        servers[1].stop()  # odd timesteps' owner goes away
        source.hint([1])
        assert source.hint_errors == 1

    def test_read_raises_on_transport_failure(self, fleet):
        servers, source = fleet
        servers[0].stop()
        with pytest.raises((ConnectionError, OSError)):
            source.read(0)

    def test_needs_at_least_one_server(self):
        with pytest.raises(ValueError, match="at least one"):
            RemoteTimestepSource([], "cafe")


class TestLoaderThroughRemoteSource:
    def test_tiered_cache_plugs_in_a_remote_source(self, dataset, server):
        source = RemoteTimestepSource([server.address], server.dataset_id)
        tiers = TieredTimestepCache(dataset, l1_timesteps=2, source=source)
        loader = TimestepLoader(dataset, cache=tiers, prefetch=False)
        try:
            gv = loader.load(1, auto_prefetch=False)
            np.testing.assert_array_equal(gv, dataset.grid_velocity(1))
            # Repeat reads hit the worker's private L1, not the network.
            loader.load(1, auto_prefetch=False)
            assert tiers.l1.stats.hits == 1
            assert source.stats.hits == 1
            # Remote reads carry no local modeled-disk charge.
            assert source.modeled_read_seconds == 0.0
        finally:
            loader.close()

    def test_prediction_forwards_to_the_server_stager(self, dataset, server):
        source = RemoteTimestepSource([server.address], server.dataset_id)
        tiers = TieredTimestepCache(dataset, l1_timesteps=2, source=source)
        try:
            tiers.prefetch_hint([2, 3])
            server.loader.drain()
            assert server.loader.cache.peek(2) is not None
            assert server.loader.cache.peek(3) is not None
            assert server.hints_received.value == 1
        finally:
            tiers.close()
