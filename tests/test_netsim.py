"""Tests for network models and throttled channels (Table 1 substrate)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dlib import DlibClient, DlibServer, pipe_pair
from repro.netsim import (
    ETHERNET_10,
    HIPPI,
    ULTRANET_ACTUAL,
    ULTRANET_RATED,
    ULTRANET_VME,
    NetworkModel,
    ThrottledChannel,
    VirtualClock,
    bytes_per_frame,
    max_particles_for_bandwidth,
    required_bandwidth_mbps,
    table1_rows,
)


class TestTable1Accounting:
    def test_paper_rows_exact(self):
        """The three rows of Table 1, to the paper's printed precision.

        Rows 1-2 match the paper exactly.  Row 3 the paper prints as
        9.537 MB/s, which is inconsistent with its own bytes column
        (1,200,000 B x 10 fps = 11.444 binary MB/s; 9.537 corresponds to
        1,000,000 B/frame).  We assert the self-consistent value — see
        EXPERIMENTS.md.
        """
        rows = table1_rows()
        assert [r["particles"] for r in rows] == [10000, 50000, 100000]
        assert [r["bytes_transferred"] for r in rows] == [120000, 600000, 1200000]
        np.testing.assert_allclose(
            [r["required_mbps"] for r in rows], [1.144, 5.722, 11.444], atol=5e-4
        )

    def test_twelve_bytes_per_point(self):
        assert bytes_per_frame(1) == 12

    def test_stereo_projection_alternative_is_worse(self):
        """Section 5.1: remote projection would cost 16 B/pt in stereo."""
        from repro.netsim.model import BYTES_PER_POINT_STEREO_PROJECTED

        assert BYTES_PER_POINT_STEREO_PROJECTED > 12
        assert required_bandwidth_mbps(
            10000, bytes_per_point=BYTES_PER_POINT_STEREO_PROJECTED
        ) > required_bandwidth_mbps(10000)

    @given(st.integers(0, 10**7), st.floats(0.5, 60, allow_nan=False))
    def test_bandwidth_linear_in_particles(self, n, fps):
        assert required_bandwidth_mbps(n, fps) == pytest.approx(
            n * 12 * fps / 2**20
        )

    def test_max_particles_inverts_required_bandwidth(self):
        n = max_particles_for_bandwidth(13 * 2**20, fps=10.0)
        assert required_bandwidth_mbps(n) <= 13.0 < required_bandwidth_mbps(n + 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            bytes_per_frame(-1)
        with pytest.raises(ValueError):
            required_bandwidth_mbps(100, fps=0)
        with pytest.raises(ValueError):
            max_particles_for_bandwidth(1e6, fps=-1)


class TestNetworkTiers:
    def test_paper_crossovers(self):
        """Who can sustain 10 fps at which particle count (section 5.1)."""
        # Measured 1 MB/s UltraNet fails even the smallest scenario...
        assert not ULTRANET_ACTUAL.supports(10_000)
        # ...the 13 MB/s VME-limited link handles all Table 1 rows...
        for n in (10_000, 50_000, 100_000):
            assert ULTRANET_VME.supports(n)
        # ...and rated UltraNet/HIPPI have ample headroom.
        assert ULTRANET_RATED.supports(100_000)
        assert HIPPI.supports(100_000)
        # 10 Mb/s Ethernet sits right at the 10k-particle edge (~10.4 fps)
        # and fails the 50k row outright.
        assert not ETHERNET_10.supports(50_000)

    def test_vme_limit_is_near_100k_particles(self):
        """Section 5.1: 13 MB/s 'should be sufficient for most
        visualizations' — it tops out just above the 100k row."""
        limit = max_particles_for_bandwidth(ULTRANET_VME.bandwidth)
        assert 100_000 < limit < 120_000

    def test_transfer_time(self):
        m = NetworkModel("test", bandwidth=1000.0, latency=0.5)
        assert m.transfer_time(1000) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            m.transfer_time(-1)

    def test_sustainable_fps(self):
        m = NetworkModel("test", bandwidth=1.0 * 2**20)
        # 120 kB frames over 1 MB/s: ~8.7 fps, under the 10 fps target.
        fps = m.sustainable_fps(120_000)
        assert 8 < fps < 10


class TestThrottledChannel:
    def test_models_delay_on_virtual_clock(self):
        a, b = pipe_pair()
        clock = VirtualClock()
        chan = ThrottledChannel(a, NetworkModel("t", bandwidth=1000.0), clock=clock)
        chan.send(b"x" * 500)
        assert clock.now == pytest.approx(0.5)
        assert b.recv() == b"x" * 500
        b.close()
        chan.close()

    def test_recv_also_throttled(self):
        a, b = pipe_pair()
        clock = VirtualClock()
        chan = ThrottledChannel(b, NetworkModel("t", bandwidth=100.0), clock=clock)
        a.send(b"y" * 50)
        assert chan.recv() == b"y" * 50
        assert clock.now == pytest.approx(0.5)
        a.close()
        chan.close()

    def test_real_sleep_throttling(self):
        import time

        a, b = pipe_pair()
        chan = ThrottledChannel(a, NetworkModel("slow", bandwidth=10_000.0))
        start = time.perf_counter()
        chan.send(b"z" * 500)  # modeled 50 ms
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.045
        b.close()
        chan.close()

    def test_dlib_client_over_throttled_channel(self):
        """A DlibClient runs unchanged over a throttled stream."""
        server = DlibServer()
        server.register("double", lambda ctx, x: x * 2)
        server.start()
        try:
            from repro.dlib.transport import connect_tcp

            raw = connect_tcp(*server.address)
            clock = VirtualClock()
            chan = ThrottledChannel(
                raw, NetworkModel("fastish", bandwidth=10.0 * 2**20), clock=clock
            )
            with DlibClient(stream=chan) as client:
                assert client.call("double", 21) == 42
            assert clock.now > 0.0
        finally:
            server.stop()

    def test_counts_pass_through(self):
        a, b = pipe_pair()
        chan = ThrottledChannel(
            a, NetworkModel("t", bandwidth=1e9), clock=VirtualClock()
        )
        chan.send(b"abc")
        assert chan.bytes_sent == 3 + 4  # payload + frame header
        b.close()
        chan.close()
        assert chan.closed

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1.0)
