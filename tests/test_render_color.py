"""Tests for colormaps and speed coloring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.color import BLUE_RED, GRAYSCALE, HEAT, Colormap, speed_colors


class TestColormap:
    def test_endpoints(self):
        np.testing.assert_array_equal(GRAYSCALE(np.array(0.0)), [0, 0, 0])
        np.testing.assert_array_equal(GRAYSCALE(np.array(1.0)), [255, 255, 255])

    def test_midpoint_interpolates(self):
        mid = GRAYSCALE(np.array(0.5))
        assert 120 <= mid[0] <= 135

    def test_clipping(self):
        np.testing.assert_array_equal(GRAYSCALE(np.array(-5.0)), [0, 0, 0])
        np.testing.assert_array_equal(GRAYSCALE(np.array(9.0)), [255, 255, 255])

    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=20).map(
            np.array
        )
    )
    @settings(max_examples=40)
    def test_output_shape_and_dtype(self, values):
        for cmap in (GRAYSCALE, HEAT, BLUE_RED):
            out = cmap(values)
            assert out.shape == values.shape + (3,)
            assert out.dtype == np.uint8

    def test_monotone_grayscale(self):
        vals = np.linspace(0, 1, 32)
        out = GRAYSCALE(vals)[:, 0].astype(int)
        assert np.all(np.diff(out) >= 0)

    def test_normalized(self):
        out = GRAYSCALE.normalized(np.array([10.0, 20.0, 30.0]))
        np.testing.assert_array_equal(out[0], [0, 0, 0])
        np.testing.assert_array_equal(out[2], [255, 255, 255])

    def test_normalized_constant_input(self):
        out = GRAYSCALE.normalized(np.full(4, 7.0))
        np.testing.assert_array_equal(out, 0)

    def test_explicit_range(self):
        out = GRAYSCALE.normalized(np.array([5.0]), vmin=0.0, vmax=10.0)
        assert 120 <= out[0, 0] <= 135

    def test_validation(self):
        with pytest.raises(ValueError):
            Colormap("bad", [[0, 0, 0]])
        with pytest.raises(ValueError):
            Colormap("bad", [[0, 0, 0], [300, 0, 0]])


class TestSpeedColors:
    def test_fast_path_hotter_than_slow(self):
        paths = np.zeros((2, 10, 3))
        paths[0, :, 0] = np.linspace(0, 1, 10)   # slow
        paths[1, :, 0] = np.linspace(0, 9, 10)   # fast
        colors = speed_colors(paths, colormap=GRAYSCALE)
        assert colors.shape == (2, 10, 3)
        assert colors[1].mean() > colors[0].mean()

    def test_uniform_speed_uniform_color(self):
        paths = np.zeros((1, 8, 3))
        paths[0, :, 0] = np.arange(8.0)
        colors = speed_colors(paths, colormap=GRAYSCALE, vmin=0.0, vmax=2.0)
        assert np.ptp(colors[0, :, 0].astype(int)) <= 1

    def test_frozen_tail_reuses_last_speed(self):
        paths = np.zeros((1, 8, 3))
        paths[0, :4, 0] = np.arange(4.0)
        paths[0, 4:, 0] = 3.0  # frozen after death
        lengths = np.array([4])
        colors = speed_colors(paths, lengths, colormap=GRAYSCALE)
        # Tail colored like the last live vertex, not like speed 0.
        np.testing.assert_array_equal(colors[0, 4], colors[0, 3])

    def test_single_vertex_paths(self):
        colors = speed_colors(np.zeros((3, 1, 3)))
        assert colors.shape == (3, 1, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            speed_colors(np.zeros((2, 3)))

    def test_renders_with_polylines(self):
        """speed_colors output plugs straight into draw_polylines."""
        from repro.render import Camera, Framebuffer, draw_polylines
        from repro.util import look_at

        paths = np.zeros((2, 6, 3))
        paths[0, :, 0] = np.linspace(-1, 1, 6)
        paths[1, :, 2] = np.linspace(-0.5, 0.5, 6)
        colors = speed_colors(paths, colormap=HEAT)
        fb = Framebuffer(64, 48)
        cam = Camera(look_at([0, 5, 0], [0, 0, 0], up=[0, 0, 1]))
        n = draw_polylines(fb, cam, paths, color=colors.astype(np.float64))
        assert n > 0
