"""The session gateway: journal, admission, capacity model, routing.

Chaos (kill/hang recovery) lives in test_gateway_chaos.py; this file
covers the deterministic pieces — unit behavior of the journal and the
admission ladder, the capacity model's arithmetic, client-side retry
budget / circuit breaker / failover, and plain multi-worker routing
through a live gateway.
"""

import threading
import time

import pytest

from repro.dlib import DlibRemoteError, RetryPolicy
from repro.dlib.client import DlibClient
from repro.dlib.protocol import RetryAfterError
from repro.dlib.server import DlibServer
from repro.dlib.transport import connect_tcp
from repro.gateway import (
    AdmissionController,
    SessionGateway,
    SessionJournal,
    ShedLevel,
    default_worker_spec,
)
from repro.netsim import ProcessFaults
from repro.obs import MetricsRegistry
from repro.perf import GatewayCapacityModel


class TestSessionJournal:
    def test_join_routes_and_leave_forgets(self):
        j = SessionJournal()
        j.record_join("w0", 1, "alice", "tok1")
        j.record_join("w1", 2, "bob", "tok2")
        assert j.worker_of(1) == "w0" and j.worker_of(2) == "w1"
        assert j.load() == {"w0": 1, "w1": 1}
        assert j.total_sessions == 2
        j.record_leave(1)
        assert j.worker_of(1) is None
        assert j.load()["w0"] == 0

    def test_recovery_state_carries_everything(self):
        j = SessionJournal()
        j.record_join("w0", 1, "alice", "tok1")
        j.record_subscribe(1, {"encoding": "f16", "deltas": True})
        j.record_add_rake(1, 7, {"end_a": [0, 0, 0]})
        j.record_clock("w0", {"position": 3.5, "playing": False})
        j.record_tool_settings("w0", {"streamline_steps": 9})
        state = j.recovery_state("w0")
        assert state["sessions"][0]["token"] == "tok1"
        assert state["sessions"][0]["subscription"]["encoding"] == "f16"
        assert state["rakes"]["7"]["end_a"] == [0, 0, 0]
        assert state["clock"]["playing"] is False
        assert state["tool_settings"]["streamline_steps"] == 9

    def test_removed_rake_leaves_recovery_state(self):
        j = SessionJournal()
        j.record_join("w0", 1, "a", "t")
        j.record_add_rake(1, 5, {"k": 1})
        j.record_remove_rake(5)
        assert j.recovery_state("w0")["rakes"] == {}

    def test_unknown_worker_recovers_to_empty(self):
        state = SessionJournal().recovery_state("w9")
        assert state["sessions"] == [] and state["rakes"] == {}

    def test_checkpoint_survives_restart(self, tmp_path):
        path = str(tmp_path / "journal.json")
        j = SessionJournal(path)
        j.record_join("w0", 1, "alice", "tok1")
        j.record_add_rake(1, 3, {"end_a": [1, 2, 3]})
        j.record_clock("w0", {"position": 1.0})
        reloaded = SessionJournal(path)
        assert reloaded.worker_of(1) == "w0"
        state = reloaded.recovery_state("w0")
        assert state["sessions"][0]["token"] == "tok1"
        assert state["rakes"]["3"]["end_a"] == [1, 2, 3]


class TestAdmissionController:
    def make(self, **kw):
        kw.setdefault("registry", MetricsRegistry())
        return AdmissionController(**kw)

    def test_places_least_loaded_ready_worker(self):
        adm = self.make(max_sessions_per_worker=4)
        load = {"w0": 3, "w1": 1, "w2": 2}
        assert adm.place(load, ["w0", "w1", "w2"]) == "w1"
        assert adm.place(load, ["w0", "w2"]) == "w2"

    def test_worker_budget_refusal_is_typed(self):
        adm = self.make(max_sessions_per_worker=2, retry_after=3.0)
        with pytest.raises(RetryAfterError) as exc:
            adm.place({"w0": 2}, ["w0"])
        assert exc.value.retry_after == 3.0
        assert exc.value.wire_data["reason"] == "worker_capacity"
        assert adm.registry.snapshot()["counters"][
            "gateway.admission.rejected"
        ] == 1

    def test_global_cap(self):
        adm = self.make(max_sessions_per_worker=8, max_sessions_total=3)
        with pytest.raises(RetryAfterError) as exc:
            adm.place({"w0": 2, "w1": 1}, ["w0", "w1"])
        assert exc.value.wire_data["reason"] == "global_capacity"

    def test_ladder_escalates_and_clears_with_hysteresis(self):
        adm = self.make()
        assert adm.update({"w0": 0.2}) == ShedLevel.SERVE
        assert adm.update({"w0": 0.9, "w1": 0.1}) == ShedLevel.REJECT_NEW
        # Inside the hysteresis band: the level holds.
        assert adm.update({"w0": 0.8}) == ShedLevel.REJECT_NEW
        assert adm.update({"w0": 0.99}) == ShedLevel.THROTTLE
        assert adm.update({"w0": 0.9}) == ShedLevel.THROTTLE
        assert adm.update({"w0": 0.8}) == ShedLevel.REJECT_NEW
        assert adm.update({"w0": 0.5}) == ShedLevel.SERVE

    def test_shedding_rejects_new_sessions(self):
        adm = self.make()
        adm.update({"w0": 0.9})
        with pytest.raises(RetryAfterError) as exc:
            adm.place({"w0": 0}, ["w0"])
        assert exc.value.wire_data["reason"] == "shedding"

    def test_throttle_gates_frames_with_residual_wait(self):
        clock = {"t": 0.0}
        adm = self.make(min_frame_interval=0.5, time_fn=lambda: clock["t"])
        adm.update({"w0": 1.0})  # THROTTLE
        adm.admit_frame(1)  # first frame passes
        clock["t"] = 0.2
        with pytest.raises(RetryAfterError) as exc:
            adm.admit_frame(1)
        assert exc.value.retry_after == pytest.approx(0.3)
        clock["t"] = 0.6
        adm.admit_frame(1)  # interval elapsed
        # Below THROTTLE the gate is wide open again.
        adm.update({"w0": 0.1})
        clock["t"] = 0.61
        adm.admit_frame(1)

    def test_note_leave_frees_throttle_state(self):
        adm = self.make()
        adm.update({"w0": 1.0})
        adm.admit_frame(42)
        adm.note_leave(42)
        assert 42 not in adm._last_frame


class TestGatewayCapacityModel:
    def test_aggregate_scales_until_gateway_bound(self):
        m = GatewayCapacityModel(
            frame_seconds=0.02, route_overhead_seconds=0.005
        )
        assert m.aggregate_fps(2, 2) == pytest.approx(100.0)
        # Eight workers could do 400 fps, but the serial gateway caps at
        # 1 / route_overhead = 200.
        assert m.aggregate_fps(16, 8) == pytest.approx(200.0)
        # One session cannot use more than one worker.
        assert m.aggregate_fps(1, 8) == pytest.approx(50.0)

    def test_session_fps_divides_the_worker(self):
        m = GatewayCapacityModel(frame_seconds=0.025)
        assert m.session_fps(1) == pytest.approx(40.0)
        assert m.session_fps(4) == pytest.approx(10.0)

    def test_sizing(self):
        m = GatewayCapacityModel(frame_seconds=0.02)
        assert m.max_sessions_per_worker(target_session_fps=10.0) == 5
        assert m.workers_for(12, target_session_fps=10.0) == 3

    def test_recovery_time_objective(self):
        m = GatewayCapacityModel(
            frame_seconds=0.02,
            respawn_seconds=0.8,
            restore_per_session_seconds=0.05,
        )
        assert m.recovery_time_objective(4) == pytest.approx(1.0)

    def test_frame_latency_counts_cotenants(self):
        m = GatewayCapacityModel(
            frame_seconds=0.02, route_overhead_seconds=0.01
        )
        assert m.frame_latency(3) == pytest.approx(0.07)

    def test_fit_and_validation(self):
        m = GatewayCapacityModel.fit([0.01, 0.03], [0.002], [1.0])
        assert m.frame_seconds == pytest.approx(0.02)
        assert m.respawn_seconds == pytest.approx(1.0)
        with pytest.raises(ValueError):
            GatewayCapacityModel(frame_seconds=0.0)
        with pytest.raises(ValueError):
            GatewayCapacityModel.fit([])


class TestProcessFaults:
    def test_choose_is_seeded(self):
        a = ProcessFaults(seed=3)
        b = ProcessFaults(seed=3)
        victims = ["w0", "w1", "w2", "w3"]
        seq_a = [a.choose(victims) for _ in range(8)]
        seq_b = [b.choose(victims) for _ in range(8)]
        assert seq_a == seq_b
        with pytest.raises(ValueError):
            a.choose([])

    def test_kill_is_sigkill(self):
        import multiprocessing

        proc = multiprocessing.get_context().Process(
            target=time.sleep, args=(60,), daemon=True
        )
        proc.start()
        registry = MetricsRegistry()
        faults = ProcessFaults(registry=registry)
        faults.kill(proc)
        proc.join(timeout=10)
        assert not proc.is_alive()
        assert proc.exitcode == -9
        assert faults.stats.kills == 1
        assert registry.snapshot()["counters"]["faults.kills"] == 1


class TestRetryAfterError:
    def test_wire_data_shape(self):
        err = RetryAfterError("busy", retry_after=2.5, reason="capacity")
        assert err.wire_data == {"retry_after": 2.5, "reason": "capacity"}

    def test_crosses_the_wire_typed(self):
        server = DlibServer("127.0.0.1", 0)

        def refuse(ctx):
            raise RetryAfterError("later", retry_after=1.5, reason="test")

        server.register("refuse", refuse)
        server.start()
        try:
            with DlibClient(*server.address) as client:
                with pytest.raises(DlibRemoteError) as exc:
                    client.call("refuse")
                assert exc.value.remote_type == "RetryAfterError"
                assert exc.value.retry_after == 1.5
                assert exc.value.data["reason"] == "test"
        finally:
            server.stop()


class TestClientResilience:
    """Retry budget, circuit breaker, and endpoint failover (issue 6)."""

    def _dead_client(self, **retry_kw):
        """A client whose server dies right after the handshake."""
        server = DlibServer("127.0.0.1", 0)
        server.register("echo", lambda ctx, x: x)
        server.start()
        client = DlibClient(
            *server.address,
            retry=RetryPolicy(base_delay=0.005, jitter=0.0, **retry_kw),
            idempotent={"echo"},
        )
        server.stop()
        return client

    def test_retry_budget_bounds_lifetime_retries(self):
        client = self._dead_client(max_attempts=10, budget=2)
        with pytest.raises((ConnectionError, OSError)):
            client.call("echo", 1)
        assert client.retries == 2  # not the 9 max_attempts would allow
        assert client.retries_exhausted == 1
        # The budget is spent: the next call gets one attempt, no retries.
        with pytest.raises((ConnectionError, OSError)):
            client.call("echo", 2)
        assert client.retries == 2
        assert client.retries_exhausted == 2
        client.close()

    def test_exhaustion_lands_in_registry(self):
        registry = MetricsRegistry()
        client = self._dead_client(max_attempts=2, budget=1)
        client.registry = registry
        with pytest.raises((ConnectionError, OSError)):
            client.call("echo", 1)
        assert registry.snapshot()["counters"]["client.retries_exhausted"] == 1
        client.close()

    def test_breaker_opens_after_consecutive_failures(self):
        client = self._dead_client(
            max_attempts=2, breaker_threshold=2, breaker_cooldown=60.0
        )
        for _ in range(2):
            with pytest.raises((ConnectionError, OSError)):
                client.call("echo", 1)
        assert client.breaker_open
        t0 = time.monotonic()
        with pytest.raises(ConnectionError, match="circuit breaker open"):
            client.call("echo", 1)
        # Fail-fast: no reconnect attempts, no backoff sleeps.
        assert time.monotonic() - t0 < 0.5
        client.close()

    def test_failover_rotates_to_live_endpoint(self):
        primary = DlibServer("127.0.0.1", 0)
        primary.register("echo", lambda ctx, x: ["primary", x])
        primary.start()
        backup = DlibServer("127.0.0.1", 0)
        backup.register("echo", lambda ctx, x: ["backup", x])
        backup.start()
        bhost, bport = backup.address
        try:
            client = DlibClient(
                *primary.address,
                retry=RetryPolicy(
                    max_attempts=2, base_delay=0.005, jitter=0.0,
                    breaker_threshold=1,
                ),
                idempotent={"echo"},
                failover=[lambda: connect_tcp(bhost, bport)],
            )
            primary.stop()
            with pytest.raises((ConnectionError, OSError)):
                client.call("echo", 1)  # exhausts the primary, rotates
            assert client.failovers == 1
            assert not client.breaker_open  # rotated instead of opening
            assert client.call("echo", 2) == ["backup", 2]
            client.close()
        finally:
            primary.stop()
            backup.stop()


@pytest.fixture(scope="module")
def gateway():
    gw = SessionGateway(
        default_worker_spec(),
        n_workers=2,
        heartbeat_interval=0.25,
        liveness_deadline=2.0,
        max_sessions_per_worker=8,
    )
    with gw:
        yield gw


class TestGatewayRouting:
    def test_joins_spread_across_workers(self, gateway):
        from repro.core import WindtunnelClient

        host, port = gateway.address
        with WindtunnelClient(host, port, name="a") as a:
            with WindtunnelClient(host, port, name="b") as b:
                assert a.client_id != b.client_id
                wa = gateway.journal.worker_of(a.client_id)
                wb = gateway.journal.worker_of(b.client_id)
                assert {wa, wb} == {"w0", "w1"}
                # Both sessions get real frames through the proxy.
                assert a.fetch_frame()["timestep"] >= 0
                assert b.fetch_frame()["timestep"] >= 0
        assert gateway.journal.total_sessions == 0  # clean leaves recorded

    def test_rakes_route_and_journal(self, gateway):
        from repro.core import WindtunnelClient

        host, port = gateway.address
        with WindtunnelClient(host, port, name="raker") as c:
            rid = c.add_rake((0, 0, 0), (1, 1, 1), n_seeds=3)
            worker = gateway.journal.worker_of(c.client_id)
            assert str(rid) in {
                str(k)
                for k in gateway.journal.recovery_state(worker)["rakes"]
            }
            state = c.fetch_frame()
            assert str(rid) in state["paths"]
            c.remove_rake(rid)
            assert gateway.journal.recovery_state(worker)["rakes"] == {}

    def test_subscription_and_clock_journal(self, gateway):
        from repro.core import WindtunnelClient

        host, port = gateway.address
        with WindtunnelClient(host, port, name="subber") as c:
            info = c.subscribe(encoding="f16", deltas=True)
            assert info["enabled"] and info["encoding"] == "f16"
            c.time_control("pause")
            worker = gateway.journal.worker_of(c.client_id)
            state = gateway.journal.recovery_state(worker)
            entry = next(
                s for s in state["sessions"]
                if s["client_id"] == c.client_id
            )
            assert entry["subscription"]["encoding"] == "f16"
            assert state["clock"]["playing"] is False
            c.time_control("resume")

    def test_gateway_stats_shape(self, gateway):
        from repro.core import WindtunnelClient

        host, port = gateway.address
        with WindtunnelClient(host, port, name="watcher") as c:
            stats = c.server_stats()
            assert stats["gateway"] is True
            assert set(stats["load"]) == {"w0", "w1"}
            assert stats["shed_level"] == 0
            metrics = c.metrics()
            assert "gateway.sessions_admitted" in metrics["registry"]["counters"]

    def test_unknown_session_is_terminal(self, gateway):
        with DlibClient(*gateway.address) as raw:
            with pytest.raises(DlibRemoteError) as exc:
                raw.call("wt.frame", 424242)
            assert exc.value.remote_type == "KeyError"


class TestGatewayAdmissionLive:
    def test_capacity_refusal_is_fast_and_typed(self):
        gw = SessionGateway(
            default_worker_spec(),
            n_workers=1,
            max_sessions_per_worker=1,
            retry_after=2.0,
        )
        from repro.core import WindtunnelClient

        with gw:
            host, port = gw.address
            with WindtunnelClient(host, port, name="first"):
                t0 = time.monotonic()
                with pytest.raises(DlibRemoteError) as exc:
                    WindtunnelClient(host, port, name="second")
                elapsed = time.monotonic() - t0
                assert exc.value.remote_type == "RetryAfterError"
                assert exc.value.retry_after == 2.0
                assert exc.value.data["reason"] == "worker_capacity"
                assert elapsed < 2.0  # refusal, not a hang
            # The seat freed on leave: admission recovers.
            with WindtunnelClient(host, port, name="third") as c:
                assert c.fetch_frame()["timestep"] >= 0


class TestGatewaySerialSafety:
    def test_concurrent_clients_interleave_cleanly(self, gateway):
        """Several clients hammering through the proxy stay isolated."""
        from repro.core import WindtunnelClient

        host, port = gateway.address
        errors = []

        def session(tag):
            try:
                with WindtunnelClient(host, port, name=tag) as c:
                    rid = c.add_rake((0, 0, 0), (1, 1, 1), n_seeds=2)
                    for _ in range(3):
                        state = c.fetch_frame()
                        assert str(rid) in state["paths"]
                    c.remove_rake(rid)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append((tag, exc))

        threads = [
            threading.Thread(target=session, args=(f"t{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []


class TestGatewaySharedCache:
    def test_workers_share_one_timestep_segment(self):
        """Co-located workers publish decoded timesteps into one segment,
        and the gateway (the owner) unlinks it on stop — no leak."""
        from repro.core import WindtunnelClient
        from repro.diskio.shmcache import attach_segment

        gw = SessionGateway(
            default_worker_spec(),
            n_workers=2,
            shared_timestep_cache=True,
            heartbeat_interval=0.25,
            liveness_deadline=2.0,
        )
        with gw:
            assert gw.timestep_cache is not None
            seg_name = gw.timestep_cache.name
            host, port = gw.address
            with WindtunnelClient(host, port, name="ca") as a:
                with WindtunnelClient(host, port, name="cb") as b:
                    # Sessions land on different workers (processes);
                    # both drive frames through the tiered loader.
                    assert (
                        gw.journal.worker_of(a.client_id)
                        != gw.journal.worker_of(b.client_id)
                    )
                    for c in (a, b):
                        c.add_rake((0, 0, 0), (1, 1, 1), n_seeds=2)
                        for _ in range(2):
                            assert c.fetch_frame()["timestep"] >= 0
            # The workers faulted timesteps in through tier 2: the
            # segment holds decoded timesteps published across process
            # boundaries.
            deadline = time.monotonic() + 10.0
            while (
                not gw.timestep_cache.resident_timesteps
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert gw.timestep_cache.resident_timesteps
        assert gw.timestep_cache is None
        with pytest.raises(FileNotFoundError):
            attach_segment(seg_name)

    def test_degrades_to_private_loaders(self, monkeypatch):
        """No shared memory on the platform: the gateway still serves."""
        from repro.core import WindtunnelClient
        from repro.gateway import router as router_mod

        def broken_segment(*args, **kwargs):
            raise OSError("no /dev/shm here")

        monkeypatch.setattr(
            router_mod, "SharedTimestepCache", broken_segment
        )
        gw = SessionGateway(
            default_worker_spec(), n_workers=1, shared_timestep_cache=True
        )
        with gw:
            assert gw.timestep_cache is None
            host, port = gw.address
            with WindtunnelClient(host, port, name="solo") as c:
                assert c.fetch_frame()["timestep"] >= 0
