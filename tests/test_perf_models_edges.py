"""Edge cases for the perf models: degenerate inputs must fail loudly.

The pipeline model and the profiler both feed acceptance checks (the
fig-8 benchmark gates on ``compare_to_model``), so a NaN that slides
through a ``t < 0`` comparison or an empty stage list must raise, not
silently return ``within_tolerance=False`` with NaN arithmetic behind
it.
"""

import math

import numpy as np
import pytest

from repro.perf import (
    ServerLoopModel,
    compare_to_model,
    profile_call,
    simulate_pipeline,
)


class TestSimulatePipelineEdges:
    def test_empty_stages_raise(self):
        with pytest.raises(ValueError, match="at least one stage"):
            simulate_pipeline({})

    def test_single_stage_has_no_overlap_to_exploit(self):
        res = simulate_pipeline({"only": 0.05}, n_frames=10)
        assert res.serial_total == pytest.approx(res.overlapped_total)
        assert res.speedup == pytest.approx(1.0)
        assert res.steady_period == pytest.approx(0.05)

    def test_single_frame_costs_the_full_sum(self):
        res = simulate_pipeline({"a": 0.01, "b": 0.02, "c": 0.03}, n_frames=1)
        assert res.overlapped_total == pytest.approx(0.06)
        assert res.completion_times.shape == (1,)

    def test_zero_duration_stage_is_legal(self):
        res = simulate_pipeline({"a": 0.0, "b": 0.02}, n_frames=5)
        assert res.steady_period == pytest.approx(0.02)
        assert res.overlapped_total == pytest.approx(5 * 0.02)

    def test_all_zero_stages_complete_instantly(self):
        res = simulate_pipeline({"a": 0.0, "b": 0.0}, n_frames=3)
        assert res.overlapped_total == 0.0
        assert res.steady_period == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.01])
    def test_non_finite_or_negative_duration_raises(self, bad):
        with pytest.raises(ValueError, match="finite and non-negative"):
            simulate_pipeline({"a": 0.01, "b": bad})

    def test_zero_frames_raise(self):
        with pytest.raises(ValueError, match="at least one frame"):
            simulate_pipeline({"a": 0.01}, n_frames=0)

    def test_list_of_tuples_preserves_order(self):
        res = simulate_pipeline([("z_last", 0.01), ("a_first", 0.02)])
        assert res.stage_names == ("z_last", "a_first")

    def test_steady_state_period_is_slowest_stage(self):
        res = simulate_pipeline({"a": 0.01, "b": 0.04, "c": 0.02}, n_frames=200)
        periods = np.diff(res.completion_times)
        # After the fill, every inter-frame gap equals max(t_i).
        np.testing.assert_allclose(periods[5:], 0.04, rtol=1e-9)


class TestCompareToModelEdges:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -1.0])
    def test_bad_measured_period_raises(self, bad):
        with pytest.raises(ValueError, match="positive finite"):
            compare_to_model({"a": 0.01}, measured_period=bad)

    def test_nan_stage_time_raises(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            compare_to_model({"a": float("nan")}, measured_period=0.1)

    def test_all_zero_stages_report_zero_error(self):
        # Degenerate model (predicted period 0): defined behaviour is
        # zero relative error rather than a division by zero.
        out = compare_to_model({"a": 0.0, "b": 0.0}, measured_period=0.1)
        assert out["predicted_period"] == 0.0
        assert out["relative_error"] == 0.0
        assert out["within_tolerance"] is True
        assert math.isfinite(out["speedup_vs_serial"])

    def test_exact_match_is_within_tolerance(self):
        out = compare_to_model(
            {"load": 0.02, "compute": 0.05}, measured_period=0.05
        )
        assert out["relative_error"] == pytest.approx(0.0)
        assert out["within_tolerance"] is True
        assert out["speedup_vs_serial"] == pytest.approx(0.07 / 0.05)

    def test_gross_mismatch_is_flagged(self):
        out = compare_to_model(
            {"load": 0.02, "compute": 0.05}, measured_period=0.5
        )
        assert out["within_tolerance"] is False
        assert out["relative_error"] > 1.0


class TestProfileCallEdges:
    def test_result_passes_through(self):
        report = profile_call(lambda: 42)
        assert report.result == 42
        assert report.total_seconds >= 0.0
        assert isinstance(report.rows, tuple)

    def test_exception_propagates_and_profiler_is_disabled(self):
        with pytest.raises(RuntimeError, match="boom"):
            profile_call(self._boom)
        # The profiler must have been disabled on the way out: a second
        # profile works and is not contaminated by the failed one.
        report = profile_call(sum, range(10))
        assert report.result == 45

    @staticmethod
    def _boom():
        raise RuntimeError("boom")

    def test_trivial_call_yields_consistent_report_api(self):
        report = profile_call(lambda: None)
        assert report.result is None
        assert report.top(3) == report.rows[:3]
        assert report.find("no_such_function_name") == []
        assert report.summary().startswith("total:")

    def test_limit_bounds_row_count(self):
        def busy():
            return sorted(str(i) for i in range(100))

        report = profile_call(busy, limit=2)
        assert len(report.rows) <= 2

    def test_rows_capture_named_functions(self):
        def named_hotspot():
            return float(np.sum(np.arange(1000.0)))

        report = profile_call(named_hotspot)
        assert report.find("named_hotspot")


class TestServerLoopModel:
    """The BENCH_7 fan-out cost model: fit, predict, and reject garbage."""

    def test_fit_recovers_a_clean_line(self):
        m = ServerLoopModel(encode_seconds=2e-3, per_client_seconds=1e-4)
        samples = [(n, m.fanout_seconds(n)) for n in (100, 250, 500, 1000)]
        fitted = ServerLoopModel.fit(samples)
        assert math.isclose(fitted.encode_seconds, 2e-3, rel_tol=1e-9)
        assert math.isclose(fitted.per_client_seconds, 1e-4, rel_tol=1e-9)

    def test_fit_clamps_noise_driven_negative_terms(self):
        # A quiet machine can measure a (slightly) negative intercept;
        # the model must stay physical.
        fitted = ServerLoopModel.fit([(10, 0.0009), (100, 0.0100)])
        assert fitted.encode_seconds >= 0.0
        assert fitted.per_client_seconds > 0.0

    def test_fit_needs_two_distinct_client_counts(self):
        with pytest.raises(ValueError):
            ServerLoopModel.fit([(100, 0.01)])
        with pytest.raises(ValueError):
            ServerLoopModel.fit([(100, 0.01), (100, 0.02)])

    def test_negative_constants_raise(self):
        with pytest.raises(ValueError):
            ServerLoopModel(encode_seconds=-1e-3, per_client_seconds=1e-4)
        with pytest.raises(ValueError):
            ServerLoopModel(encode_seconds=1e-3, per_client_seconds=-1e-4)

    def test_max_publish_hz_is_the_fanout_reciprocal(self):
        m = ServerLoopModel(encode_seconds=0.0, per_client_seconds=1e-3)
        assert math.isclose(m.max_publish_hz(100), 10.0)
        free = ServerLoopModel(encode_seconds=0.0, per_client_seconds=0.0)
        assert free.max_publish_hz(10**6) == float("inf")

    def test_max_clients_inverts_max_publish_hz(self):
        m = ServerLoopModel(encode_seconds=1e-3, per_client_seconds=1e-4)
        n = m.max_clients(10.0, utilization=1.0)
        # n clients fit at 10 Hz; n+1 must not.
        assert m.max_publish_hz(n) >= 10.0 > m.max_publish_hz(n + 1)

    def test_max_clients_utilization_reserves_headroom(self):
        m = ServerLoopModel(encode_seconds=0.0, per_client_seconds=1e-4)
        assert m.max_clients(10.0, utilization=0.5) == pytest.approx(
            m.max_clients(10.0, utilization=1.0) / 2, abs=1
        )
        with pytest.raises(ValueError):
            m.max_clients(0.0)
        with pytest.raises(ValueError):
            m.max_clients(10.0, utilization=1.5)
