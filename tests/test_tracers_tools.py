"""Tests for the tool-level tracers: streamlines, particle paths, streaklines."""

import numpy as np
import pytest

from repro.flow import MemoryDataset, RigidRotation, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid
from repro.tracers import (
    StreaklineTracer,
    TracerResult,
    compute_particle_paths,
    compute_streamlines,
)


def make_dataset(field, shape=(9, 9, 5), lo=(0, 0, 0), hi=(8, 8, 4), n_times=4, dt=0.25):
    grid = cartesian_grid(shape, lo=lo, hi=hi)
    vel = sample_on_grid(field, grid, np.arange(n_times) * dt, dtype=np.float64)
    return MemoryDataset(grid, vel, dt=dt)


@pytest.fixture(scope="module")
def uniform_ds():
    return make_dataset(UniformFlow([1.0, 0.0, 0.0]))


@pytest.fixture(scope="module")
def rotation_ds():
    return make_dataset(
        RigidRotation(omega=[0, 0, 1.0], center=[4.0, 4.0, 0.0]), n_times=2
    )


class TestComputeStreamlines:
    def test_straight_in_uniform_flow(self, uniform_ds):
        seeds = np.array([[1.0, 4.0, 2.0]])
        res = compute_streamlines(uniform_ds, 0, seeds, n_steps=10, dt=0.1)
        assert isinstance(res, TracerResult)
        phys = res.physical()
        np.testing.assert_allclose(phys[0, :, 1], 4.0, atol=1e-6)
        assert np.all(np.diff(phys[0, :, 0]) > 0)

    def test_paper_benchmark_shape(self, rotation_ds):
        """100 streamlines x 200 points: the section 5.3 benchmark."""
        rng = np.random.default_rng(0)
        seeds = rng.uniform([2, 2, 1], [6, 6, 3], size=(100, 3))
        res = compute_streamlines(rotation_ds, 0, seeds, n_steps=199, dt=0.01)
        assert res.grid_paths.shape == (100, 200, 3)
        assert res.n_points == 20000
        assert res.nbytes_wire == 240000  # paper: "240,000 bytes of data"

    def test_bidirectional_extends_both_ways(self, uniform_ds):
        seeds = np.array([[4.0, 4.0, 2.0]])
        res = compute_streamlines(
            uniform_ds, 0, seeds, n_steps=5, dt=0.1, bidirectional=True
        )
        line = res.grid_paths[0, : res.lengths[0]]
        assert line[:, 0].min() < 4.0 < line[:, 0].max()
        # Monotone along the line (upstream half reversed correctly).
        assert np.all(np.diff(line[:, 0]) > 0)

    def test_bidirectional_contains_seed_once(self, uniform_ds):
        seeds = np.array([[4.0, 4.0, 2.0]])
        res = compute_streamlines(
            uniform_ds, 0, seeds, n_steps=3, dt=0.1, bidirectional=True
        )
        line = res.grid_paths[0, : res.lengths[0]]
        matches = np.all(np.isclose(line, [4.0, 4.0, 2.0]), axis=1).sum()
        assert matches == 1

    def test_physical_is_float32_12_bytes_per_point(self, uniform_ds):
        res = compute_streamlines(uniform_ds, 0, np.array([[1.0, 4.0, 2.0]]), 5, 0.1)
        phys = res.physical()
        assert phys.dtype == np.float32
        assert phys[0].nbytes == 6 * 12

    def test_polylines_trimmed(self, uniform_ds):
        seeds = np.array([[7.0, 4.0, 2.0]])  # dies quickly moving +x
        res = compute_streamlines(uniform_ds, 0, seeds, n_steps=20, dt=0.5)
        polys = res.physical_polylines()
        assert len(polys) == 1
        assert polys[0].shape[0] == res.lengths[0] < 21


class TestComputeParticlePaths:
    def test_window_limits_length(self, uniform_ds):
        seeds = np.array([[1.0, 4.0, 2.0]])
        res = compute_particle_paths(uniform_ds, 0, seeds, n_steps=10, max_window=3)
        # max_window=3 timesteps -> at most 2 integration steps.
        assert res.grid_paths.shape[1] == 3

    def test_invalid_window(self, uniform_ds):
        with pytest.raises(ValueError):
            compute_particle_paths(
                uniform_ds, 0, np.zeros((1, 3)), n_steps=5, max_window=0
            )

    def test_uniform_advection_distance(self, uniform_ds):
        # Physical speed 1, dt 0.25, 3 steps -> 0.75 displacement.
        seeds = np.array([[1.0, 4.0, 2.0]])
        res = compute_particle_paths(uniform_ds, 0, seeds, n_steps=3)
        phys = res.physical(np.float64)
        np.testing.assert_allclose(phys[0, -1, 0] - phys[0, 0, 0], 0.75, atol=1e-9)

    def test_time_scale(self, uniform_ds):
        seeds = np.array([[1.0, 4.0, 2.0]])
        res = compute_particle_paths(uniform_ds, 0, seeds, n_steps=2, time_scale=2.0)
        phys = res.physical(np.float64)
        np.testing.assert_allclose(phys[0, 1, 0] - phys[0, 0, 0], 0.5, atol=1e-9)


class TestStreaklineTracer:
    def test_population_grows_then_saturates(self, uniform_ds):
        tr = StreaklineTracer(max_length=3)
        seeds = np.array([[1.0, 4.0, 2.0], [1.0, 5.0, 2.0]])
        for i in range(5):
            tr.advance(uniform_ds, min(i, 3), seeds)
            assert tr.filled == min(i + 1, 3)
        assert tr.n_seeds == 2
        assert tr.n_particles <= 6

    def test_newest_particle_at_seed(self, uniform_ds):
        tr = StreaklineTracer(max_length=5)
        seeds = np.array([[1.0, 4.0, 2.0]])
        tr.advance(uniform_ds, 0, seeds)
        tr.advance(uniform_ds, 1, seeds)
        res = tr.result(uniform_ds.grid)
        np.testing.assert_allclose(res.grid_paths[0, 0], seeds[0])

    def test_filament_trails_upstream_history(self, uniform_ds):
        tr = StreaklineTracer(max_length=10)
        seeds = np.array([[1.0, 4.0, 2.0]])
        for i in range(4):
            tr.advance(uniform_ds, 0, seeds, dt=0.25)
        res = tr.result(uniform_ds.grid)
        line = res.grid_paths[0, : res.lengths[0]]
        # Older particles have advected further downstream (+x).
        assert np.all(np.diff(line[:, 0]) > 0)
        assert res.lengths[0] == 4

    def test_particles_die_leaving_domain(self, uniform_ds):
        tr = StreaklineTracer(max_length=50)
        seeds = np.array([[6.0, 4.0, 2.0]])
        for i in range(10):
            tr.advance(uniform_ds, 0, seeds, dt=1.0)
        # Physical speed 1 = grid speed 1 (spacing 1); particles exit at
        # i=8 after 2 steps, so only ~3 live particles trail the seed.
        assert tr.n_particles <= 3 * 1 + 1
        res = tr.result(uniform_ds.grid)
        assert res.lengths[0] <= 4

    def test_reset_on_seed_count_change(self, uniform_ds):
        tr = StreaklineTracer(max_length=5)
        tr.advance(uniform_ds, 0, np.array([[1.0, 4.0, 2.0]]))
        tr.advance(uniform_ds, 0, np.array([[1.0, 4.0, 2.0], [1.0, 5.0, 2.0]]))
        assert tr.filled == 1  # population was rebuilt
        assert tr.n_seeds == 2

    def test_explicit_reset(self, uniform_ds):
        tr = StreaklineTracer(max_length=5)
        tr.advance(uniform_ds, 0, np.array([[1.0, 4.0, 2.0]]))
        tr.reset()
        assert tr.filled == 0 and tr.n_particles == 0

    def test_empty_result(self, uniform_ds):
        tr = StreaklineTracer()
        res = tr.result(uniform_ds.grid)
        assert res.n_paths == 0
        assert res.n_points == 0

    def test_result_requires_grid_or_dataset(self, uniform_ds):
        tr = StreaklineTracer()
        with pytest.raises(ValueError):
            tr.result()
        assert tr.result(dataset=uniform_ds).n_paths == 0

    def test_moving_seed_emits_from_new_position(self, uniform_ds):
        tr = StreaklineTracer(max_length=5)
        tr.advance(uniform_ds, 0, np.array([[1.0, 4.0, 2.0]]))
        tr.advance(uniform_ds, 0, np.array([[1.0, 6.0, 2.0]]))
        res = tr.result(uniform_ds.grid)
        np.testing.assert_allclose(res.grid_paths[0, 0], [1.0, 6.0, 2.0])

    def test_invalid_max_length(self):
        with pytest.raises(ValueError):
            StreaklineTracer(max_length=0)

    def test_invalid_seeds(self, uniform_ds):
        tr = StreaklineTracer()
        with pytest.raises(ValueError):
            tr.advance(uniform_ds, 0, np.zeros((2, 2)))


class TestStreaklineSubsteps:
    def _rotation_ds(self):
        from repro.flow import RigidRotation

        return make_dataset(
            RigidRotation(omega=[0, 0, 1.0], center=[4.0, 4.0, 0.0]),
            n_times=2,
            dt=1.0,
        )

    def test_substeps_improve_accuracy(self):
        """With a coarse frame dt, substeps keep particles on their circle."""
        ds = self._rotation_ds()
        seeds = np.array([[6.0, 4.0, 2.0]])  # radius 2 about (4, 4)
        radii = {}
        for substeps in (1, 8):
            tr = StreaklineTracer(max_length=10)
            tr.advance(ds, 0, seeds, dt=1.0, substeps=substeps)
            for _ in range(3):
                tr.advance(ds, 0, seeds, dt=1.0, substeps=substeps)
            res = tr.result(ds.grid)
            oldest = res.grid_paths[0, res.lengths[0] - 1]
            radii[substeps] = abs(
                np.linalg.norm(oldest[:2] - [4.0, 4.0]) - 2.0
            )
        assert radii[8] < radii[1]

    def test_substeps_validation(self):
        ds = self._rotation_ds()
        tr = StreaklineTracer()
        with pytest.raises(ValueError):
            tr.advance(ds, 0, np.array([[4.0, 4.0, 2.0]]), substeps=0)

    def test_single_substep_unchanged_behavior(self):
        ds = self._rotation_ds()
        seeds = np.array([[6.0, 4.0, 2.0]])
        a, b = StreaklineTracer(max_length=5), StreaklineTracer(max_length=5)
        a.advance(ds, 0, seeds, dt=0.3)
        b.advance(ds, 0, seeds, dt=0.3, substeps=1)
        np.testing.assert_array_equal(
            a.result(ds.grid).grid_paths, b.result(ds.grid).grid_paths
        )
