"""Tests for trilinear interpolation (repro.grid.interpolation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import in_domain_mask, trilinear_interpolate


def affine_field(shape, coeffs, const):
    """Node samples of an affine function of the grid indices."""
    ni, nj, nk = shape
    i, j, k = np.meshgrid(
        np.arange(ni), np.arange(nj), np.arange(nk), indexing="ij"
    )
    return coeffs[0] * i + coeffs[1] * j + coeffs[2] * k + const


coords_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 4.0, allow_nan=False),
        st.floats(0.0, 3.0, allow_nan=False),
        st.floats(0.0, 2.0, allow_nan=False),
    ),
    min_size=1,
    max_size=20,
)


class TestExactness:
    @given(
        coords_strategy,
        st.tuples(
            st.floats(-3, 3, allow_nan=False),
            st.floats(-3, 3, allow_nan=False),
            st.floats(-3, 3, allow_nan=False),
        ),
        st.floats(-5, 5, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_affine_fields_reproduced_exactly(self, pts, coeffs, const):
        """Trilinear interpolation is exact for fields affine in the indices."""
        shape = (5, 4, 3)
        field = affine_field(shape, coeffs, const)
        pts = np.array(pts)
        got = trilinear_interpolate(field, pts)
        want = pts @ np.array(coeffs) + const
        np.testing.assert_allclose(got, want, atol=1e-9 * (1 + np.abs(want).max()))

    def test_node_values_recovered(self):
        rng = np.random.default_rng(7)
        field = rng.normal(size=(4, 5, 6))
        for idx in [(0, 0, 0), (3, 4, 5), (2, 1, 3)]:
            got = trilinear_interpolate(field, np.array(idx, dtype=float))
            np.testing.assert_allclose(got, field[idx])

    def test_cell_midpoint_is_corner_average(self):
        field = np.zeros((2, 2, 2))
        field[1, 1, 1] = 8.0
        got = trilinear_interpolate(field, [0.5, 0.5, 0.5])
        np.testing.assert_allclose(got, 1.0)

    def test_upper_boundary_exact(self):
        """Points exactly on the upper face of the grid are interpolable."""
        field = affine_field((3, 3, 3), (1.0, 1.0, 1.0), 0.0)
        got = trilinear_interpolate(field, [2.0, 2.0, 2.0])
        np.testing.assert_allclose(got, 6.0)


class TestVectorFieldsAndShapes:
    def test_vector_field(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(3, 3, 3, 3))
        pts = rng.uniform(0, 2, size=(10, 3))
        out = trilinear_interpolate(field, pts)
        assert out.shape == (10, 3)
        # Componentwise equals per-component scalar interpolation.
        for c in range(3):
            np.testing.assert_allclose(
                out[:, c], trilinear_interpolate(field[..., c], pts)
            )

    def test_single_point_shape(self):
        field = np.zeros((2, 2, 2, 3))
        out = trilinear_interpolate(field, [0.5, 0.5, 0.5])
        assert out.shape == (3,)

    def test_out_parameter(self):
        field = np.ones((2, 2, 2, 2))
        out = np.empty((4, 2))
        res = trilinear_interpolate(field, np.full((4, 3), 0.5), out=out)
        assert res is out
        np.testing.assert_allclose(out, 1.0)

    def test_bad_coords_shape(self):
        with pytest.raises(ValueError):
            trilinear_interpolate(np.zeros((2, 2, 2)), np.zeros((3, 2)))

    def test_bad_field_shape(self):
        with pytest.raises(ValueError):
            trilinear_interpolate(np.zeros((2, 2)), np.zeros((1, 3)))

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            trilinear_interpolate(np.zeros((1, 2, 2)), np.zeros((1, 3)))


class TestClamping:
    def test_clamp_matches_boundary_value(self):
        field = affine_field((3, 3, 3), (1.0, 0.0, 0.0), 0.0)
        got = trilinear_interpolate(field, [10.0, 1.0, 1.0], clamp=True)
        np.testing.assert_allclose(got, 2.0)

    def test_noclamp_raises_outside(self):
        field = np.zeros((3, 3, 3))
        with pytest.raises(ValueError):
            trilinear_interpolate(field, [-0.1, 0.0, 0.0], clamp=False)

    def test_in_domain_mask(self):
        mask = in_domain_mask(
            np.array([[0.0, 0.0, 0.0], [2.0, 2.0, 2.0], [2.01, 0.0, 0.0], [-0.01, 1, 1]]),
            (3, 3, 3),
        )
        np.testing.assert_array_equal(mask, [True, True, False, False])
