"""The scenario-fuzz harness: hostile manifests against the sweep lane.

Two layers, mirroring the lane's own split:

* **Validation fuzz** (the bulk, 200+ generated manifests): arbitrary
  mixtures of legal and degenerate manifest content — 1-point and
  zero-length rakes, odd/prime grid shapes, out-of-range rates, empty
  axes, unknown keys, wrong types.  The contract under test is total:
  ``SweepManifest.from_dict`` either returns a manifest whose expansion
  is self-consistent, or raises a typed :class:`ScenarioError` whose
  ``.key`` names the offending entry.  A bare ``TypeError`` /
  ``IndexError`` / hang from inside the validator is a bug.

* **Execution fuzz** (smaller, real runs): *valid* scenarios at hostile
  corners — minimum 2x2x2 grids, prime dimensions, coincident seeds,
  extreme-decimation q16 encoding — must run headlessly to an
  invariant-consistent metrics snapshot.

Runs derandomized (fixed seed) so CI failures reproduce locally; CI
executes this file as part of the sweep-smoke job.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sweep import ScenarioError, SweepManifest, run_scenario
from repro.sweep.runner import RUN_METRICS

FUZZ = settings(
    max_examples=220,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

# -- strategies ---------------------------------------------------------------

#: Scalars a confused manifest author might put anywhere.
junk = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-5, max_value=70),
    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    st.text(max_size=6),
    st.lists(st.integers(min_value=-2, max_value=9), max_size=4),
)

#: Grid dims biased toward odd/prime/minimal shapes.
dim = st.sampled_from([1, 2, 3, 5, 7, 11, 13, 17, 8, 10])
shape3 = st.tuples(dim, dim, dim).map(list)

frac = st.one_of(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=-1.0, max_value=2.0, allow_nan=False),
)
point3 = st.tuples(frac, frac, frac).map(list)

rake_entry = st.fixed_dictionaries(
    {},
    optional={
        "a": st.one_of(point3, junk),
        "b": st.one_of(point3, junk),
        "seeds": st.one_of(st.integers(min_value=-1, max_value=12), junk),
        "kind": st.one_of(
            st.sampled_from(["streamline", "streakline", "particle_path",
                             "vortex", ""]),
            junk,
        ),
    },
)

fault_entry = st.fixed_dictionaries(
    {},
    optional={
        "seed": st.one_of(st.integers(min_value=-3, max_value=99), junk),
        "drop_rate": st.one_of(
            st.floats(min_value=-0.5, max_value=1.5, allow_nan=False), junk
        ),
        "corrupt_rate": st.floats(min_value=0.0, max_value=1.0,
                                  allow_nan=False),
        "stall_seconds": st.floats(min_value=-0.1, max_value=2.0,
                                   allow_nan=False),
    },
)

axis_value = st.one_of(
    shape3,
    st.sampled_from(["v1", "f16", "q16", "gpu", "default", "diag", "none"]),
    st.integers(min_value=-2, max_value=600),
    st.booleans(),
    st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
    junk,
)

axes_dict = st.dictionaries(
    st.sampled_from(
        ["shape", "timesteps", "encoding", "backend", "fused", "quality",
         "decimate", "seeds_per_rake", "streamline_steps", "fault_profile",
         "rakes", "bogus_axis"]
    ),
    st.one_of(st.lists(axis_value, max_size=3), axis_value),
    max_size=3,
)

manifest_dict = st.fixed_dictionaries(
    {},
    optional={
        "name": st.one_of(st.text(max_size=8), junk),
        "base": st.one_of(
            st.dictionaries(
                st.sampled_from(
                    ["shape", "timesteps", "frames", "encoding", "quality",
                     "rakes", "fault_profile", "time_speed", "ghost"]
                ),
                st.one_of(axis_value, junk),
                max_size=4,
            ),
            junk,
        ),
        "axes": st.one_of(axes_dict, junk),
        "layouts": st.one_of(
            st.dictionaries(
                st.sampled_from(["diag", "pt", ""]),
                st.one_of(st.lists(rake_entry, max_size=2), junk),
                max_size=2,
            ),
            junk,
        ),
        "faults": st.one_of(
            st.dictionaries(
                st.sampled_from(["lossy", "none", "x"]),
                st.one_of(fault_entry, junk),
                max_size=2,
            ),
            junk,
        ),
        "extra_top_level": junk,
    },
)


# -- validation fuzz ----------------------------------------------------------


@FUZZ
@given(raw=st.one_of(manifest_dict, junk))
def test_from_dict_is_total(raw):
    """Any input: a consistent manifest or a ScenarioError naming a key."""
    try:
        manifest = SweepManifest.from_dict(raw)
    except ScenarioError as exc:
        assert isinstance(exc.key, str) and exc.key, "error must name a key"
        assert exc.key in str(exc)
        return
    scenarios = manifest.expand()
    ids = [s.scenario_id for s in scenarios]
    assert len(ids) == len(set(ids)), "expansion must dedup by identity"
    for s in scenarios:
        assert all(d >= 2 for d in s.shape)
        assert s.frames >= 1 and s.timesteps >= 1
        assert 0.0 < s.quality <= 1.0
        assert s.encoding in ("v1", "f16", "q16")
        assert len(s.rakes) >= 1
        # Expansion is pure: the same manifest expands identically twice.
    assert [s.scenario_id for s in manifest.expand()] == ids


@FUZZ
@given(
    a=point3,
    b=point3,
    seeds=st.integers(min_value=-2, max_value=8),
    kind=st.sampled_from(["streamline", "streakline", "particle_path",
                          "vortex"]),
)
def test_rake_validation_is_total(a, b, seeds, kind):
    """Degenerate rakes: in-range ones pass, others are named rejections."""
    raw = {
        "name": "r",
        "base": {"rakes": "l"},
        "layouts": {"l": [{"a": a, "b": b, "seeds": seeds, "kind": kind}]},
    }
    in_range = all(0.0 <= v <= 1.0 for v in a + b)
    valid = in_range and seeds >= 1 and kind != "vortex"
    try:
        manifest = SweepManifest.from_dict(raw)
    except ScenarioError as exc:
        assert not valid
        assert exc.key.startswith("layouts.l[0]")
        return
    assert valid
    (scenario,) = manifest.expand()
    assert scenario.rakes[0].seeds == seeds


def test_empty_axis_is_a_named_rejection():
    with pytest.raises(ScenarioError) as exc_info:
        SweepManifest.from_dict({"name": "t", "axes": {"encoding": []}})
    assert exc_info.value.key == "axes.encoding"


# -- execution fuzz -----------------------------------------------------------

#: Valid-by-construction scenarios at hostile corners, kept tiny so the
#: whole execution fuzz runs in seconds.
exec_manifest = st.fixed_dictionaries(
    {
        "shape": st.sampled_from([[2, 2, 2], [3, 5, 7], [7, 3, 2],
                                  [6, 6, 4]]),
        "timesteps": st.integers(min_value=1, max_value=3),
        "frames": st.integers(min_value=1, max_value=2),
        "encoding": st.sampled_from(["v1", "f16", "q16"]),
        "decimate": st.sampled_from([1, 2, 64]),
        "quality": st.sampled_from([1.0, 0.5, 0.05]),
        "seeds": st.sampled_from([1, 2]),
        "zero_length": st.booleans(),
        "kind": st.sampled_from(["streamline", "streakline",
                                 "particle_path"]),
        "faulty": st.booleans(),
    }
)


@settings(
    max_examples=30,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=exec_manifest)
def test_degenerate_scenarios_run_to_consistent_metrics(params):
    a = [0.5, 0.5, 0.5]
    b = a if params["zero_length"] else [0.9, 0.1, 0.8]
    raw = {
        "name": "exec-fuzz",
        "base": {
            "shape": params["shape"],
            "timesteps": params["timesteps"],
            "frames": params["frames"],
            "encoding": params["encoding"],
            "decimate": params["decimate"],
            "quality": params["quality"],
            "streamline_steps": 4,
            "streakline_length": 3,
            "rakes": "fz",
            "fault_profile": "f" if params["faulty"] else "none",
        },
        "layouts": {
            "fz": [{"a": a, "b": b, "seeds": params["seeds"],
                    "kind": params["kind"]}]
        },
        "faults": {"f": {"seed": 1, "drop_rate": 0.3, "corrupt_rate": 0.2,
                         "stall_rate": 0.2}},
    }
    (scenario,) = SweepManifest.from_dict(raw).expand()
    record = run_scenario(scenario)
    assert record["status"] == "ok"
    m = record["metrics"]
    for name in RUN_METRICS:
        assert name in m, name
    assert m["points_total"] >= 0
    assert m["bytes_per_frame"] > 0  # even an empty frame has wire framing
    assert m["frame_seconds_p50"] <= m["frame_seconds_p95"]
    assert m["wire_bytes_total"] >= m["delivered_bytes"]
    if not params["faulty"]:
        assert m["faults_injected"] == 0
