"""End-to-end client/server integration over real sockets.

These tests exercise the full distributed cycle of section 5.2: input
devices -> commands over the network -> shared environment update ->
visualization compute -> path arrays back -> head-tracked stereo render.
"""

import numpy as np
import pytest

from repro.core import FrameBudgetGovernor, ToolSettings, WindtunnelClient, WindtunnelServer
from repro.dlib import DlibRemoteError
from repro.flow import MemoryDataset, RigidRotation, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid
from repro.util import look_at


def make_dataset(n_times=8):
    grid = cartesian_grid((9, 9, 5), lo=(0, 0, 0), hi=(8, 8, 4))
    field = RigidRotation(omega=[0, 0, 0.5], center=[4, 4, 0]) + UniformFlow(
        [0.1, 0, 0]
    )
    vel = sample_on_grid(field, grid, np.arange(n_times) * 0.2, dtype=np.float64)
    return MemoryDataset(grid, vel, dt=0.2)


@pytest.fixture(scope="module")
def dataset():
    return make_dataset()


@pytest.fixture()
def server(dataset):
    clock = {"now": 0.0}
    srv = WindtunnelServer(
        dataset,
        settings=ToolSettings(streamline_steps=20, streakline_length=8),
        time_speed=1.0,
        time_fn=lambda: clock["now"],
    )
    srv._test_clock = clock  # let tests advance server time deterministically
    srv.start()
    yield srv
    srv.stop()


HEAD = look_at([4.0, -6.0, 2.0], [4.0, 4.0, 2.0], up=[0, 0, 1])


class TestJoinLeave:
    def test_join_returns_dataset_info(self, server):
        with WindtunnelClient(*server.address, name="alice") as c:
            assert c.dataset_info["n_timesteps"] == 8
            assert c.dataset_info["grid_shape"] == [9, 9, 5]
            assert c.client_id >= 1

    def test_leave_removes_user(self, server):
        c = WindtunnelClient(*server.address)
        cid = c.client_id
        c.close()
        assert cid not in server.env.users


class TestFullCycle:
    def test_frame_renders_paths(self, server):
        with WindtunnelClient(*server.address, width=160, height=120) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=5, kind="streamline")
            fb = c.frame(HEAD, hand_position=[4, 4, 2])
            assert fb.nonblack_pixels() > 20
            # Stereo: red and blue present, green absent.
            assert fb.color[..., 0].max() > 0
            assert fb.color[..., 2].max() > 0
            assert fb.color[..., 1].max() == 0

    def test_mono_rendering(self, server):
        with WindtunnelClient(
            *server.address, width=160, height=120, stereo=False
        ) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=5)
            fb = c.frame(HEAD, hand_position=[4, 4, 2])
            assert fb.nonblack_pixels() > 0

    def test_frame_timer_records_stages(self, server):
        with WindtunnelClient(*server.address, width=80, height=60) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=3)
            c.frame(HEAD, [4, 4, 2])
            assert c.timer.frames.count == 1
            assert set(c.timer.stages) == {"send_input", "fetch", "render"}

    def test_wire_paths_are_float32(self, server):
        with WindtunnelClient(*server.address) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            state = c.fetch_frame()
            for path in state["paths"].values():
                assert path["vertices"].dtype == np.float32

    def test_grab_and_drag_over_network(self, server):
        with WindtunnelClient(*server.address) as c:
            rid = c.add_rake([2.0, 2.0, 2.0], [2.0, 6.0, 2.0], n_seeds=3)
            out = c.send_input([4, -6, 2], [2.0, 2.0, 2.0], "fist")
            assert out["holding"] is not None
            c.send_input([4, -6, 2], [3.0, 2.5, 2.0], "fist")
            rake = server.env.rakes[rid]
            np.testing.assert_allclose(rake.end_a, [3.0, 2.5, 2.0])
            c.send_input([4, -6, 2], [3.0, 2.5, 2.0], "open")
            assert server.env.rake_owner(rid) is None

    def test_remove_rake(self, server):
        with WindtunnelClient(*server.address) as c:
            rid = c.add_rake([2, 2, 2], [2, 6, 2])
            c.remove_rake(rid)
            assert rid not in server.env.rakes

    def test_time_control_over_network(self, server):
        with WindtunnelClient(*server.address) as c:
            snap = c.time_control("scrub", 3.0)
            assert snap["timestep"] == 3
            snap = c.time_control("pause")
            assert snap["playing"] is False
            snap = c.time_control("resume")
            assert snap["playing"] is True

    def test_invalid_time_op(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c.time_control("warp", 1.0)


class TestSharedVisualization:
    def test_second_client_reuses_computation(self, server):
        """One compute per (version, timestep), shared by all clients."""
        with WindtunnelClient(*server.address) as a, WindtunnelClient(
            *server.address
        ) as b:
            a.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            before = server.frames_computed
            sa = a.fetch_frame()
            sb = b.fetch_frame()
            # b's env snapshot differs (it has two users) but paths are the
            # identical shared arrays.
            np.testing.assert_array_equal(
                list(sa["paths"].values())[0]["vertices"],
                list(sb["paths"].values())[0]["vertices"],
            )
            assert not sa["cached"] or before > 0
            assert sb["cached"]

    def test_users_see_each_other(self, server):
        with WindtunnelClient(*server.address, name="a") as a, WindtunnelClient(
            *server.address, name="b"
        ) as b:
            a.send_input([1, 1, 1], [0, 0, 0], "open")
            state = b.fetch_frame()
            others = [
                u for uid, u in state["env"]["users"].items()
                if int(uid) != b.client_id
            ]
            assert any(np.allclose(u["head_position"], [1, 1, 1]) for u in others)

    def test_fcfs_over_network(self, server):
        with WindtunnelClient(*server.address) as a, WindtunnelClient(
            *server.address
        ) as b:
            rid = a.add_rake([2.0, 2.0, 2.0], [2.0, 6.0, 2.0])
            ra = a.send_input([0, 0, 0], [2.0, 2.0, 2.0], "fist")
            rb = b.send_input([0, 0, 0], [2.0, 2.0, 2.0], "fist")
            assert ra["holding"] is not None
            assert rb["holding"] is None
            assert server.env.rake_owner(rid) == a.client_id

    def test_cannot_remove_rake_held_by_other(self, server):
        with WindtunnelClient(*server.address) as a, WindtunnelClient(
            *server.address
        ) as b:
            rid = a.add_rake([2.0, 2.0, 2.0], [2.0, 6.0, 2.0])
            a.send_input([0, 0, 0], [2.0, 2.0, 2.0], "fist")
            with pytest.raises(DlibRemoteError):
                b.remove_rake(rid)


class TestTimeAdvance:
    def test_clock_advances_visualization(self, server):
        with WindtunnelClient(*server.address) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=3, kind="streakline")
            s0 = c.fetch_frame()
            server._test_clock["now"] = 1.0  # one timestep later (speed=1)
            s1 = c.fetch_frame()
            assert s1["timestep"] == s0["timestep"] + 1
            # Streakline grew by one generation.
            p0 = list(s0["paths"].values())[0]["vertices"]
            p1 = list(s1["paths"].values())[0]["vertices"]
            assert p1.shape[1] == p0.shape[1] + 1


class TestGovernorIntegration:
    def test_governor_reports_quality(self, dataset):
        gov = FrameBudgetGovernor(budget=1e-7)  # impossible budget
        with WindtunnelServer(
            dataset,
            settings=ToolSettings(streamline_steps=50),
            governor=gov,
            time_fn=lambda: 0.0,
        ) as srv:
            with WindtunnelClient(*srv.address) as c:
                c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=5)
                c.fetch_frame()
                c.time_control("step", 1)  # bump version to force recompute
                c.fetch_frame()
                stats = c.server_stats()
                assert stats["quality"] < 1.0


class TestNetworkLoop:
    def test_background_fetch_decouples_render(self, server):
        """Figure 9: rendering proceeds from the latest fetched state."""
        from tests import wait_until

        with WindtunnelClient(*server.address, width=80, height=60) as c:
            c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=3)
            c.start_network_loop(interval=0.01)
            wait_until(lambda: c.latest_state is not None)
            # Render many head-tracked frames without any further RPC.
            served_before = server.frames_served
            for yaw in np.linspace(0, 0.2, 5):
                pose = look_at(
                    [4 + yaw, -6, 2], [4, 4, 2], up=[0, 0, 1]
                )
                fb = c.render(pose)
            assert fb.nonblack_pixels() > 0
            c.stop_network_loop()

    def test_double_start_rejected(self, server):
        with WindtunnelClient(*server.address) as c:
            c.start_network_loop()
            with pytest.raises(RuntimeError):
                c.start_network_loop()
            c.stop_network_loop()
