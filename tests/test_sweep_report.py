"""Golden-master test for the sweep comparison report.

The pair of results stores under ``tests/data/sweep_golden/{a,b}`` is
checked in, and ``report.txt`` next to them pins the exact bytes
``render_report(compare_stores(a, b), verbose=True)`` must produce.
Store ``b`` deliberately carries one past-tolerance metric regression
and one ok->error status break, so the pair also pins the nonzero-exit
contract of ``repro sweep report`` (the CI sweep-smoke job runs the
same pair).

Regenerating after an *intentional* report-format or store-schema
change::

    WT_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_sweep_report.py

then review the diff of tests/data/sweep_golden/ like any other code
change.  The generator below is fully deterministic (fixed metrics, no
wall clock), so regeneration is reproducible on any machine.
"""

import io
import os
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.perf import MetricTolerance, SweepTolerances
from repro.sweep import (
    ResultsStore,
    SweepManifest,
    compare_stores,
    render_report,
)

GOLDEN = Path(__file__).parent / "data" / "sweep_golden"
REGEN = bool(os.environ.get("WT_REGEN_GOLDEN"))

#: The golden manifest: 4 scenarios, ids content-addressed as always.
_MANIFEST = {
    "name": "golden",
    "base": {"shape": [8, 8, 5], "timesteps": 2, "frames": 2,
             "seeds_per_rake": 2, "streamline_steps": 6,
             "streakline_length": 4},
    "axes": {"encoding": ["v1", "q16"], "fused": [True, False]},
}


def _metrics(i: int) -> dict:
    """Deterministic per-scenario metrics (no clocks, no randomness)."""
    return {
        "frames": 2,
        "frame_seconds_p50": 0.004 + i * 0.001,
        "frame_seconds_p95": 0.006 + i * 0.001,
        "bytes_per_frame": 1000.0 + 100.0 * i,
        "encodes_per_publication": 2.0,
        "points_total": 144,
        "faults_injected": 0,
    }


def build_golden_stores(root: Path) -> None:
    """Write the deterministic store pair the golden report reads."""
    manifest = SweepManifest.from_dict(_MANIFEST)
    scenarios = sorted(manifest.expand(), key=lambda s: s.scenario_id)
    header = {
        "manifest": manifest.to_dict(),
        "manifest_digest": manifest.digest,
        "n_scenarios": len(scenarios),
    }
    for store_name in ("a", "b"):
        store = ResultsStore(root / store_name)
        store.initialize(header)
        for i, scenario in enumerate(scenarios):
            record = {
                "scenario_id": scenario.scenario_id,
                "label": scenario.label(),
                "scenario": scenario.params(),
                "status": "ok",
                "metrics": _metrics(i),
            }
            if store_name == "b":
                if i == 1:  # one past-tolerance byte regression
                    record["metrics"]["bytes_per_frame"] *= 1.05
                if i == 2:  # one ok -> error status break
                    record = {
                        "scenario_id": scenario.scenario_id,
                        "label": scenario.label(),
                        "scenario": scenario.params(),
                        "status": "error",
                        "error": {"type": "RuntimeError",
                                  "message": "synthetic break"},
                    }
            store.write_run(record)
        store.finalize(
            {"scenarios": len(scenarios),
             "ok": len(scenarios) - (1 if store_name == "b" else 0),
             "rejected": 0,
             "errors": 1 if store_name == "b" else 0,
             "wall_seconds": 0.0,
             "workers": 2}
        )


@pytest.fixture(scope="module", autouse=True)
def regen_if_requested():
    if REGEN:
        build_golden_stores(GOLDEN)
        report = compare_stores(GOLDEN / "a", GOLDEN / "b")
        (GOLDEN / "report.txt").write_text(
            render_report(report, verbose=True), encoding="utf-8"
        )
    yield


def test_golden_report_bytes_are_stable():
    report = compare_stores(GOLDEN / "a", GOLDEN / "b")
    rendered = render_report(report, verbose=True)
    expected = (GOLDEN / "report.txt").read_text(encoding="utf-8")
    assert rendered == expected


def test_golden_pair_fails_the_lane():
    report = compare_stores(GOLDEN / "a", GOLDEN / "b")
    assert report.regressions == 1
    assert report.status_breaks == 1
    assert report.failed


def test_identical_stores_pass():
    report = compare_stores(GOLDEN / "a", GOLDEN / "a")
    assert not report.failed
    assert "PASS: 0 metric regression(s)" in render_report(report)


def test_cli_report_exit_codes_and_bytes():
    out = io.StringIO()
    code = cli_main(
        ["sweep", "report", str(GOLDEN / "a"), str(GOLDEN / "b"),
         "--verbose"],
        out=out,
    )
    assert code == 1
    assert out.getvalue() == (GOLDEN / "report.txt").read_text(
        encoding="utf-8"
    )
    assert cli_main(
        ["sweep", "report", str(GOLDEN / "a"), str(GOLDEN / "a")],
        out=io.StringIO(),
    ) == 0


def test_cli_tolerance_override_waives_the_regression():
    # The byte regression is +5%; a 10% override forgives it, but the
    # status break still fails the comparison.
    out = io.StringIO()
    code = cli_main(
        ["sweep", "report", str(GOLDEN / "a"), str(GOLDEN / "b"),
         "--tolerance", "bytes_per_frame=0.10"],
        out=out,
    )
    assert code == 1
    assert "REGRESSED" not in out.getvalue()
    assert "status: ok -> error" in out.getvalue()


def test_cli_bad_tolerance_spec_is_a_named_error():
    out = io.StringIO()
    assert cli_main(
        ["sweep", "report", str(GOLDEN / "a"), str(GOLDEN / "b"),
         "--tolerance", "nonsense"],
        out=out,
    ) == 2
    assert "tolerance" in out.getvalue()


def test_disjoint_stores_compare_but_list_strays(tmp_path):
    build_golden_stores(tmp_path)
    extra = ResultsStore(tmp_path / "b")
    runs = extra.runs()
    # Remove one scenario from b: it shows under "only in baseline".
    sid = sorted(runs)[0]
    (tmp_path / "b" / "runs" / f"{sid}.json").unlink()
    report = compare_stores(tmp_path / "a", tmp_path / "b")
    assert report.only_old == [sid]
    assert f"- {sid}" in render_report(report)


def test_tolerance_floor_suppresses_noise_below_band():
    tol = MetricTolerance(0.5, "higher", floor=0.05)
    assert not tol.judge(0.003, 0.03)["regressed"]  # both inside band
    assert tol.judge(0.04, 0.08)["regressed"]  # new side left the band


def test_tolerances_override_unknown_metric_raises():
    table = SweepTolerances({"m": MetricTolerance(0.1)})
    with pytest.raises(KeyError):
        table.override("ghost", 0.5)
