"""The v2 frame-delivery layer: quantization, deltas, subscriptions.

Property tests (hypothesis) for the codecs, unit tests for the frame
store's encode-variant cache and digest history and for the degradation
ladder, and socket-level interop tests pinning the compat contract of
docs/network.md:

* decode(encode(frame)) is bit-exact for v1/delta entries and inside the
  advertised error bound for quantized ones;
* a delta against a lost/forgotten ack resyncs via keyframe;
* an old-format (v1) client sees byte-identical frames against the v2
  server, and a new client degrades gracefully against an old server.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import ToolSettings, WindtunnelClient, WindtunnelServer
from repro.core.framestore import (
    EncodingCache,
    FrameStore,
    PublishedFrame,
    encode_paths,
    encode_published,
)
from repro.core.governor import DEGRADATION_LADDER, DegradationPolicy
from repro.dlib.protocol import (
    DlibProtocolError,
    decode_path_entry,
    decode_value,
    dequantize_points,
    encode_value,
    quantization_error_bound,
    quantize_points,
)
from repro.flow import MemoryDataset, RigidRotation, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid
from repro.netsim import BandwidthSchedule
from tests import wait_until

# -- codec properties ---------------------------------------------------------

point_arrays = arrays(
    dtype=np.float32,
    shape=st.tuples(
        st.integers(0, 4), st.integers(0, 20), st.just(3)
    ),
    elements=st.floats(-1e4, 1e4, width=32),
)


@settings(max_examples=60, deadline=None)
@given(point_arrays)
def test_quantize_roundtrip_within_bound(vertices):
    payload = quantize_points(vertices)
    back = dequantize_points(payload)
    assert back.shape == vertices.shape
    assert back.dtype == np.float32
    bound = quantization_error_bound(payload)
    err = np.abs(back.astype(np.float64) - vertices.astype(np.float64))
    assert err.size == 0 or float(err.max()) <= bound


@settings(max_examples=60, deadline=None)
@given(point_arrays)
def test_quantized_payload_survives_the_wire(vertices):
    payload = quantize_points(vertices)
    decoded = decode_value(encode_value(payload))
    np.testing.assert_array_equal(decoded["q"], payload["q"])
    np.testing.assert_array_equal(decoded["scale"], payload["scale"])
    np.testing.assert_array_equal(decoded["offset"], payload["offset"])


@settings(max_examples=40, deadline=None)
@given(point_arrays)
def test_f16_entry_decodes_to_float32(vertices):
    entry = {
        "kind": "streamline",
        "vertices": np.ascontiguousarray(vertices, dtype=np.float16),
        "lengths": np.full(vertices.shape[0], vertices.shape[1], dtype=np.int64),
    }
    decoded = decode_path_entry(decode_value(encode_value(entry)))
    assert decoded["vertices"].dtype == np.float32
    err = np.abs(
        decoded["vertices"].astype(np.float64) - vertices.astype(np.float64)
    )
    # float16 relative error: ~2^-11 of the magnitude.
    if err.size:
        tol = 1e-3 * max(1.0, float(np.abs(vertices).max()))
        assert float(err.max()) <= tol


def test_quantize_rejects_bad_shape():
    with pytest.raises(DlibProtocolError):
        quantize_points(np.zeros((4, 2), dtype=np.float32))
    with pytest.raises(DlibProtocolError):
        dequantize_points({"q": np.zeros((1, 3))})


def test_decode_path_entry_rejects_malformed():
    with pytest.raises(DlibProtocolError):
        decode_path_entry({"kind": "streamline", "lengths": [1]})
    with pytest.raises(DlibProtocolError):
        decode_path_entry("not a dict")


# -- encode-once frame store --------------------------------------------------


class _Result:
    """Stand-in tracer result with the wire_arrays() contract."""

    def __init__(self, seed: int, n_seeds: int = 3, length: int = 5) -> None:
        rng = np.random.default_rng(seed)
        self._v = np.ascontiguousarray(
            rng.uniform(-5, 5, (n_seeds, length, 3)).astype(np.float32)
        )
        self._l = np.full(n_seeds, length, dtype=np.int64)
        self._v.setflags(write=False)
        self._l.setflags(write=False)

    def wire_arrays(self):
        return self._v, self._l


def _frame(results: dict, seq: int = 0) -> PublishedFrame:
    kinds = {rid: "streamline" for rid in results}
    enc = encode_published(kinds, results)
    return PublishedFrame(
        version=1,
        timestep=0,
        seq=seq,
        paths=enc.paths,
        paths_wire=enc.wire,
        compute_seconds=0.0,
        n_points=enc.n_points,
        digests=enc.digests,
        rake_fragments=enc.fragments,
    )


def test_composed_wire_is_byte_identical_to_direct_encode():
    """Fragment concatenation == single-shot encode: the v1 compat pin."""
    results = {1: _Result(1), 2: _Result(2), 7: _Result(7)}
    kinds = {rid: "streamline" for rid in results}
    paths, wire, n_points = encode_paths(kinds, results)
    assert wire.data == encode_value(paths)
    frame = _frame(results)
    full = frame.compose(list(frame.paths))
    assert full.data == wire.data


def test_compose_subset_matches_direct_subset_encode():
    results = {1: _Result(1), 2: _Result(2), 3: _Result(3)}
    frame = _frame(results)
    subset = frame.compose(["2"])
    assert subset.data == encode_value({"2": frame.paths["2"]})


def test_digests_identify_identical_geometry():
    a = encode_published({1: "streamline"}, {1: _Result(5)})
    b = encode_published({1: "streamline"}, {1: _Result(5)})
    c = encode_published({1: "streamline"}, {1: _Result(6)})
    assert a.digests["1"] == b.digests["1"]
    assert a.digests["1"] != c.digests["1"]


def test_encoding_cache_builds_each_variant_once():
    frame = _frame({1: _Result(1)})
    cache = frame.enc_cache
    first = cache.entry(frame, "1", "q16", 1)
    again = cache.entry(frame, "1", "q16", 1)
    assert first == again
    assert cache.misses == 1 and cache.hits == 1
    # The prebuilt v1 variant is not a cache transaction at all.
    cache.entry(frame, "1", "v1", 1)
    assert cache.misses == 1 and cache.hits == 1


def test_decimated_entry_keeps_every_nth_point():
    frame = _frame({1: _Result(1, n_seeds=2, length=9)})
    fragment = frame.compose(["1"], encoding="v1", decimate=3)
    decoded = decode_value(fragment.data)["1"]
    np.testing.assert_array_equal(
        decoded["vertices"], frame.paths["1"]["vertices"][:, ::3, :]
    )
    assert list(decoded["lengths"]) == [3, 3]


def test_cache_rejects_unknown_variant():
    frame = _frame({1: _Result(1)})
    with pytest.raises(ValueError):
        frame.enc_cache.entry(frame, "1", "zstd", 1)
    with pytest.raises(ValueError):
        frame.enc_cache.entry(frame, "1", "v1", 0)


def test_framestore_digest_history_is_bounded():
    store = FrameStore(digest_history=3)
    frames = [_frame({1: _Result(i)}) for i in range(5)]
    stamped = [store.publish(f) for f in frames]
    assert [f.seq for f in stamped] == [1, 2, 3, 4, 5]
    assert store.digests_at(1) is None  # evicted
    assert store.digests_at(2) is None
    for f in stamped[2:]:
        assert store.digests_at(f.seq) == f.digests
    assert store.digests_at(99) is None


# -- degradation ladder -------------------------------------------------------


def test_degradation_escalates_and_recovers_with_hysteresis():
    p = DegradationPolicy(target_fps=8.0, alpha=1.0, hold_frames=0)
    p.note_send(100_000, 0.0)  # 100 kB frames -> needs 800 kB/s
    p.note_reported(200_000.0)  # quarter of what is needed
    assert p.level == 1
    for _ in range(10):
        p.note_reported(200_000.0)
    assert p.level == len(DEGRADATION_LADDER) - 1  # clamped at the bottom
    for _ in range(10):
        p.note_reported(50e6)  # link recovers
    assert p.level == 0
    assert p.escalations >= 1 and p.recoveries >= 1


def test_degradation_hold_frames_prevent_flapping():
    p = DegradationPolicy(target_fps=8.0, alpha=1.0, hold_frames=3)
    p.note_send(100_000, 0.0)
    p.note_reported(100_000.0)
    assert p.level == 1
    # Within the hold-down window nothing moves, however bad the signal.
    p.note_reported(1_000.0)
    p.note_reported(1_000.0)
    p.note_reported(1_000.0)
    assert p.level == 1
    p.note_reported(1_000.0)
    assert p.level == 2


def test_degradation_plan_never_upgrades_client_choice():
    p = DegradationPolicy()
    assert p.plan("q16", 2) == ("q16", 2)  # rung 0 keeps negotiated settings
    p.level = 2  # q16 + decimate 2
    assert p.plan("v1", 1) == ("q16", 2)
    assert p.plan("f16", 4) == ("f16", 4)  # client encoding and coarser
    assert p.plan("q16", 1) == ("q16", 2)  # decimation stack


def test_bandwidth_schedule_steps():
    sched = BandwidthSchedule([(0.0, 13e6), (2.0, 1e6)])
    assert sched.bandwidth_at(0.0) == 13e6
    assert sched.bandwidth_at(1.999) == 13e6
    assert sched.bandwidth_at(2.0) == 1e6
    assert sched.bandwidth_at(100.0) == 1e6
    with pytest.raises(ValueError):
        BandwidthSchedule([])
    with pytest.raises(ValueError):
        BandwidthSchedule([(1.0, 1e6)])  # must start at t=0
    with pytest.raises(ValueError):
        BandwidthSchedule([(0.0, 0.0)])


# -- end-to-end interop over real sockets ------------------------------------


def _make_dataset(n_times=6):
    grid = cartesian_grid((9, 9, 5), lo=(0, 0, 0), hi=(8, 8, 4))
    field = RigidRotation(omega=[0, 0, 0.5], center=[4, 4, 0]) + UniformFlow(
        [0.1, 0, 0]
    )
    vel = sample_on_grid(field, grid, np.arange(n_times) * 0.2, dtype=np.float64)
    return MemoryDataset(grid, vel, dt=0.2)


@pytest.fixture(scope="module")
def dataset():
    return _make_dataset()


@pytest.fixture()
def server(dataset):
    clock = {"now": 0.0}
    srv = WindtunnelServer(
        dataset,
        settings=ToolSettings(streamline_steps=16, streakline_length=6),
        time_speed=1.0,
        time_fn=lambda: clock["now"],
    )
    srv._test_clock = clock
    srv.start()
    yield srv
    srv.stop()


class TestInterop:
    def test_v1_client_sees_pre_subscription_bytes(self, server):
        """An unsubscribed client's frame is the pre-PR encoding verbatim."""
        with WindtunnelClient(*server.address, name="v1") as c:
            c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
            state = c.fetch_frame()
            assert "v2" not in state
            frame = server.store.latest()
            # The served fragment is exactly the old single-shot encode.
            assert frame.paths_wire.data == encode_value(frame.paths)
            for rid, entry in state["paths"].items():
                np.testing.assert_array_equal(
                    entry["vertices"], frame.paths[rid]["vertices"]
                )
                assert entry["vertices"].dtype == np.float32

    def test_subscribe_then_delta_cycle(self, server):
        with WindtunnelClient(*server.address, name="v2") as c:
            for i in range(3):
                c.add_rake([1 + i, 1, 1], [1 + i, 7, 3], n_seeds=5)
            baseline = c.fetch_frame()
            info = c.subscribe(encoding="q16", deltas=True)
            assert info["enabled"] and info["encoding"] == "q16"
            key = c.fetch_frame()  # keyframe under the new terms
            assert key["v2"]["mode"] == "keyframe"
            assert set(key["paths"]) == set(baseline["paths"])
            again = c.fetch_frame()  # same publication -> empty delta
            assert again["v2"]["mode"] == "delta"
            assert set(again["paths"]) == set(baseline["paths"])
            bound = 1e-3  # the acceptance bound, docs/network.md
            for rid, entry in again["paths"].items():
                ref = baseline["paths"][rid]["vertices"].astype(np.float64)
                err = np.abs(entry["vertices"].astype(np.float64) - ref)
                assert float(err.max()) <= bound

    def test_unchanged_rakes_are_bit_exact_across_delta(self, server):
        """A delta omits unchanged rakes; the client's held copy is the
        keyframe's bytes — bit-exact, not re-quantized."""
        with WindtunnelClient(*server.address, name="delta") as c:
            c.time_control("pause")
            stable = c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
            c.add_rake([4, 1, 1], [4, 7, 3], n_seeds=5)
            c.subscribe(encoding="v1", deltas=True)
            key = c.fetch_frame()
            held_before = key["paths"][str(stable)]["vertices"]
            c.add_rake([6, 1, 1], [6, 7, 3], n_seeds=5)  # scene change
            nxt = c.fetch_frame()
            assert nxt["v2"]["mode"] == "delta"
            assert held_before is nxt["paths"][str(stable)]["vertices"]

    def test_delta_resync_after_lost_ack(self, server):
        """An ack outside the digest history falls back to a keyframe."""
        with WindtunnelClient(*server.address, name="resync") as c:
            c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
            c.subscribe(deltas=True)
            c.fetch_frame()
            # Simulate a client whose ack refers to a frame the server no
            # longer remembers (dropped response / long partition).
            with c._state_lock:
                c._acked_seq = 10_000
            state = c.fetch_frame()
            assert state["v2"]["mode"] == "keyframe"
            assert c._acked_seq == state["v2"]["seq"]

    def test_client_base_mismatch_resets_ack(self, server):
        with WindtunnelClient(*server.address, name="mismatch") as c:
            c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
            c.subscribe(deltas=True)
            c.fetch_frame()
            held = dict(c._held_paths)
            # A delta against a base we do not hold must not be merged.
            bogus = {
                "timestep": 0,
                "paths": {},
                "env": {},
                "cached": True,
                "v2": {
                    "seq": 99,
                    "mode": "delta",
                    "base": 12345,
                    "encoding": "v1",
                    "decimate": 1,
                    "removed": [],
                },
            }
            out = c._integrate_v2(bogus)
            assert c._acked_seq == 0  # next fetch resyncs
            assert set(out["paths"]) == set(held)
            state = c.fetch_frame()
            assert state["v2"]["mode"] == "keyframe"

    def test_interest_subscription_filters_rakes(self, server):
        with WindtunnelClient(*server.address, name="subset") as c:
            want = c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
            c.add_rake([4, 1, 1], [4, 7, 3], n_seeds=5)
            c.subscribe(rakes=[want])
            state = c.fetch_frame()
            assert set(state["paths"]) == {str(want)}
            # A second, unsubscribed client still sees everything.
            with WindtunnelClient(*server.address, name="all") as c2:
                full = c2.fetch_frame()
                assert len(full["paths"]) == 2

    def test_unsubscribe_restores_v1_path(self, server):
        with WindtunnelClient(*server.address, name="undo") as c:
            c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
            c.subscribe(encoding="q16")
            assert "v2" in c.fetch_frame()
            c.unsubscribe()
            state = c.fetch_frame()
            assert "v2" not in state
            assert state["paths"]["1"]["vertices"].dtype == np.float32

    def test_new_client_against_old_server_falls_back(self, server):
        """A server without wt.subscribe (pre-v2) degrades gracefully."""
        with WindtunnelClient(*server.address, name="fallback") as c:
            c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
            del server.dlib._procedures["wt.subscribe"]
            try:
                info = c.subscribe(encoding="q16")
                assert info == {"enabled": False, "supported": False}
                assert c.subscription is None
                state = c.fetch_frame()  # plain v1 cycle keeps working
                assert "v2" not in state and len(state["paths"]) == 1
            finally:
                server.dlib.register("wt.subscribe", server._rpc_subscribe)

    def test_leave_clears_subscription(self, server):
        c = WindtunnelClient(*server.address, name="leaver")
        c.subscribe()
        cid = c.client_id
        assert cid in server._subs
        c.close()
        wait_until(lambda: cid not in server._subs)

    def test_net_metrics_surface_through_obs(self, server):
        with WindtunnelClient(*server.address, name="metrics") as c:
            c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
            c.subscribe(encoding="q16", adaptive=True)
            c.fetch_frame()
            c.fetch_frame()
            snap = c.metrics()["registry"]
            assert snap["counters"]["net.keyframes"] >= 1
            assert snap["counters"]["net.delta_frames"] >= 1
            assert 0.0 < snap["gauges"]["net.delta_ratio"] < 1.0
            assert snap["histograms"]["net.bytes_per_frame"]["count"] >= 2
            assert "net.encode_cache_hits" in snap["counters"]
            assert f"net.degradation.{c.client_id}.level" in snap["gauges"]


# -- push-mode delivery -------------------------------------------------------


class TestPushDelivery:
    """Server-initiated frame streaming (``wt.subscribe(push=True)``)."""

    def _serve(self):
        clock = {"now": 0.0}
        srv = WindtunnelServer(
            _make_dataset(),
            settings=ToolSettings(streamline_steps=16, streakline_length=6),
            time_speed=1.0,
            time_fn=lambda: clock["now"],
        )
        srv.start()
        return srv, clock

    def test_push_subscription_streams_frames_without_polling(self):
        srv, clock = self._serve()
        try:
            with WindtunnelClient(*srv.address, name="pushed") as c:
                info = c.subscribe(encoding="q16", push=True)
                assert info["push"] is True
                c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)

                # The first push may predate the rake (the subscription
                # streams immediately, and an empty pre-rake frame is a
                # legal delivery) — wait for a pushed state that carries
                # the rake's paths, not merely for any push.
                def rake_frame_pushed():
                    c.drain_pushes(0.05)
                    state = c.latest_state
                    return (
                        c.pushed_frames > 0
                        and state is not None
                        and state.get("paths")
                    )

                wait_until(rake_frame_pushed, timeout=5.0)
                assert c.pushed_frames >= 1
                state = c.latest_state  # arrived with no fetch_frame call
                assert state is not None and "v2" in state
                assert state["paths"]
        finally:
            srv.stop()

    def test_pull_only_subscription_never_sees_a_push(self):
        srv, clock = self._serve()
        try:
            with WindtunnelClient(*srv.address, name="pull") as c:
                info = c.subscribe(encoding="q16", push=False)
                assert info["push"] is False
                c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
                c.fetch_frame()
                assert c.drain_pushes(0.3) == 0
                assert c.pushed_frames == 0
        finally:
            srv.stop()

    def test_push_subscriber_drives_production_without_polling(self):
        """Standing demand: the pipeline produces for a push subscriber
        even though nobody calls wt.frame."""
        srv, clock = self._serve()
        try:
            with WindtunnelClient(*srv.address, name="standing") as c:
                c.subscribe(push=True)
                assert srv.pipeline.standing_demand == 1
                produced_before = srv.pipeline.frames_produced
                c.add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
                wait_until(lambda: srv.pipeline.frames_produced > produced_before)
            wait_until(lambda: srv.pipeline.standing_demand == 0)
        finally:
            srv.stop()

    def test_fan_out_encodes_once_for_many_subscribers(self):
        """N push subscribers sharing one encoding variant cost one encode
        per publication, not N."""
        srv, clock = self._serve()
        clients = []
        try:
            for i in range(4):
                c = WindtunnelClient(*srv.address, name=f"fan{i}")
                c.subscribe(encoding="q16", push=True)
                clients.append(c)
            snap0 = srv.registry.snapshot()["counters"]
            misses0 = snap0.get("net.encode_cache_misses", 0)
            clients[0].add_rake([1, 1, 1], [1, 7, 3], n_seeds=5)
            for c in clients:
                wait_until(lambda c=c: c.drain_pushes(0.05) > 0 or c.pushed_frames > 0)
            snap = srv.registry.snapshot()["counters"]
            assert snap["net.publications_fanned_out"] >= 1
            pushes = snap["net.push_frames"]
            assert pushes >= len(clients)
            # Encode-dedup: variants are built once per publication and
            # shared across every subscriber on that (rake, ladder) rung.
            misses = snap.get("net.encode_cache_misses", 0) - misses0
            publications = snap["net.publications_fanned_out"]
            assert misses <= 2 * publications  # paths variant + env, not N·clients
        finally:
            for c in clients:
                c.close()
            srv.stop()

    @pytest.mark.parametrize("encoding", ["v1", "q16", "f16"])
    def test_push_and_pull_sequences_are_bit_identical(self, encoding):
        """The property the fan-out cache must preserve: a push-mode
        subscriber and a pull-mode subscriber with the same subscription
        terms reconstruct bit-identical per-rake state for the same
        publication sequence."""
        srv, clock = self._serve()
        try:
            with WindtunnelClient(*srv.address, name="pull") as pull, \
                 WindtunnelClient(*srv.address, name="push") as push:
                pull.subscribe(encoding=encoding, deltas=True, push=False)
                push.subscribe(encoding=encoding, deltas=True, push=True)
                rng = np.random.default_rng(7)
                for step in range(4):
                    # Mutate the scene: each mutation is one publication.
                    y = float(rng.uniform(1.0, 7.0))
                    pull.add_rake([1 + step, 1, 1], [1 + step, y, 3], n_seeds=4)
                    state = pull.fetch_frame()
                    seq = state["v2"]["seq"]
                    wait_until(
                        lambda: (
                            push.drain_pushes(0.05) >= 0
                            and push.latest_state is not None
                            and push.latest_state.get("v2", {}).get("seq", -1) >= seq
                        )
                    )
                    pushed = push.latest_state
                    assert pushed["v2"]["encoding"] == state["v2"]["encoding"]
                    assert set(pushed["paths"]) == set(state["paths"])
                    for rid, entry in state["paths"].items():
                        other = pushed["paths"][rid]
                        # Bit-identical reconstruction, not merely close:
                        # both sides decode the same cached fragments.
                        np.testing.assert_array_equal(
                            entry["vertices"], other["vertices"]
                        )
                        np.testing.assert_array_equal(
                            np.asarray(entry["lengths"]), np.asarray(other["lengths"])
                        )
                        assert entry["kind"] == other["kind"]
        finally:
            srv.stop()
