"""Tests for dataset containers, residency, and grid-velocity caching."""

import numpy as np
import pytest

from repro.flow import DiskDataset, MemoryDataset, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid


@pytest.fixture()
def small_dataset():
    grid = cartesian_grid((4, 4, 4), hi=(3.0, 6.0, 9.0))
    times = np.arange(5) * 0.1
    vel = sample_on_grid(UniformFlow([1.0, 2.0, 3.0]), grid, times)
    return MemoryDataset(grid, vel, dt=0.1)


class TestMemoryDataset:
    def test_shapes_and_counts(self, small_dataset):
        ds = small_dataset
        assert ds.n_timesteps == 5
        assert ds.velocity(0).shape == (4, 4, 4, 3)
        assert ds.timestep_nbytes == 4 * 4 * 4 * 3 * 4  # float32
        assert ds.total_nbytes == 5 * ds.timestep_nbytes

    def test_shape_validation(self):
        grid = cartesian_grid((4, 4, 4))
        with pytest.raises(ValueError):
            MemoryDataset(grid, np.zeros((5, 3, 3, 3, 3)))
        with pytest.raises(ValueError):
            MemoryDataset(grid, np.zeros((4, 4, 4, 3)))

    def test_parameter_validation(self, small_dataset):
        grid = cartesian_grid((4, 4, 4))
        vel = np.zeros((2, 4, 4, 4, 3))
        with pytest.raises(ValueError):
            MemoryDataset(grid, vel, dt=0.0)
        with pytest.raises(ValueError):
            MemoryDataset(grid, vel, cache_timesteps=0)

    def test_timestep_bounds(self, small_dataset):
        with pytest.raises(IndexError):
            small_dataset.velocity(5)
        with pytest.raises(IndexError):
            small_dataset.velocity(-1)

    def test_times(self, small_dataset):
        np.testing.assert_allclose(small_dataset.times(), [0, 0.1, 0.2, 0.3, 0.4])

    def test_grid_velocity_converts_with_jacobian(self, small_dataset):
        # Grid spacing (1, 2, 3) => grid velocity (1, 1, 1) for v=(1,2,3).
        gv = small_dataset.grid_velocity(0)
        np.testing.assert_allclose(gv, 1.0, atol=1e-12)

    def test_grid_velocity_cache_lru(self, small_dataset):
        ds = small_dataset
        ds.cache_timesteps = 2
        ds.grid_velocity(0)
        ds.grid_velocity(1)
        ds.grid_velocity(2)
        assert ds.cached_timesteps == [1, 2]
        # Touch 1 -> becomes most recent; loading 3 evicts 2.
        ds.grid_velocity(1)
        ds.grid_velocity(3)
        assert ds.cached_timesteps == [1, 3]

    def test_grid_velocity_cached_identity(self, small_dataset):
        a = small_dataset.grid_velocity(0)
        b = small_dataset.grid_velocity(0)
        assert a is b

    def test_grid_velocity_readonly(self, small_dataset):
        gv = small_dataset.grid_velocity(0)
        with pytest.raises(ValueError):
            gv[0, 0, 0, 0] = 1.0

    def test_max_particle_path_steps(self, small_dataset):
        per = 4 * 4 * 4 * 3 * 8
        assert small_dataset.max_particle_path_steps(per * 3) == 3
        assert small_dataset.max_particle_path_steps(per - 1) == 0


class TestDiskDataset:
    def test_save_load_roundtrip(self, small_dataset, tmp_path):
        path = small_dataset.save(tmp_path / "ds")
        disk = DiskDataset(path)
        assert disk.n_timesteps == small_dataset.n_timesteps
        assert disk.dt == small_dataset.dt
        np.testing.assert_allclose(disk.grid.xyz, small_dataset.grid.xyz)
        for t in range(disk.n_timesteps):
            np.testing.assert_allclose(disk.velocity(t), small_dataset.velocity(t))

    def test_velocity_is_materialized_copy(self, small_dataset, tmp_path):
        disk = DiskDataset(small_dataset.save(tmp_path / "ds"))
        v = disk.velocity(0)
        assert isinstance(v, np.ndarray) and not isinstance(v, np.memmap)

    def test_grid_velocity_on_disk_dataset(self, small_dataset, tmp_path):
        disk = DiskDataset(small_dataset.save(tmp_path / "ds"))
        np.testing.assert_allclose(disk.grid_velocity(2), 1.0, atol=1e-12)

    def test_corrupt_metadata_detected(self, small_dataset, tmp_path):
        path = small_dataset.save(tmp_path / "ds")
        meta = path / "meta.json"
        meta.write_text(meta.read_text().replace('"n_timesteps": 5', '"n_timesteps": 9'))
        with pytest.raises(ValueError):
            DiskDataset(path)
