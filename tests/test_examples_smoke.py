"""Smoke tests: the shipped examples must actually run.

Only the two fastest examples run here (the others take minutes by
design); they cover both the stereo VR path and the desktop/mono path
end to end, which protects the examples from API drift.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return proc.stdout


@pytest.mark.slow
def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "wrote" in out
    assert (EXAMPLES / "output" / "quickstart.ppm").exists()


@pytest.mark.slow
def test_desktop_example_runs():
    out = run_example("desktop_windtunnel.py")
    assert "rake dragged by mouse" in out
    assert (EXAMPLES / "output" / "desktop_windtunnel.ppm").exists()
