"""Tests for analytic fields and field composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import (
    ABCFlow,
    LambOseenVortex,
    OscillatingShearLayer,
    RigidRotation,
    Superposition,
    UniformFlow,
)

pts_strategy = st.lists(
    st.tuples(*[st.floats(-5, 5, allow_nan=False)] * 3), min_size=1, max_size=10
).map(np.array)


class TestUniformFlow:
    def test_constant_everywhere(self):
        f = UniformFlow([1.0, 2.0, 3.0])
        out = f(np.zeros((4, 3)), t=7.0)
        np.testing.assert_allclose(out, np.tile([1.0, 2.0, 3.0], (4, 1)))

    def test_single_point(self):
        out = UniformFlow()(np.zeros(3))
        assert out.shape == (3,)
        np.testing.assert_allclose(out, [1, 0, 0])

    def test_bad_velocity(self):
        with pytest.raises(ValueError):
            UniformFlow([1.0, 2.0])

    def test_bad_points_shape(self):
        with pytest.raises(ValueError):
            UniformFlow()(np.zeros((2, 2)))


class TestRigidRotation:
    def test_velocity_perpendicular_to_radius(self):
        f = RigidRotation(omega=[0, 0, 2.0])
        p = np.array([[1.0, 0.0, 0.0]])
        v = f(p)
        np.testing.assert_allclose(v, [[0.0, 2.0, 0.0]])

    @given(pts_strategy)
    def test_speed_proportional_to_radius(self, pts):
        f = RigidRotation(omega=[0, 0, 1.0])
        v = f(pts, 0.0)
        r = np.linalg.norm(pts[:, :2], axis=1)
        np.testing.assert_allclose(np.linalg.norm(v, axis=1), r, atol=1e-12)

    def test_center_offset(self):
        f = RigidRotation(omega=[0, 0, 1.0], center=[1.0, 0.0, 0.0])
        np.testing.assert_allclose(f(np.array([1.0, 0.0, 0.0])), 0.0)


class TestLambOseenVortex:
    def test_finite_at_core(self):
        f = LambOseenVortex(gamma=1.0, core_radius=0.2)
        v = f(np.array([[0.0, 0.0, 0.0]]))
        assert np.all(np.isfinite(v))
        np.testing.assert_allclose(v, 0.0, atol=1e-12)

    def test_far_field_ideal(self):
        gamma = 2.0
        f = LambOseenVortex(gamma=gamma, core_radius=0.1)
        r = 5.0
        v = f(np.array([[r, 0.0, 0.0]]))[0]
        np.testing.assert_allclose(v[1], gamma / (2 * np.pi * r), rtol=1e-6)
        np.testing.assert_allclose(v[0], 0.0, atol=1e-12)

    def test_circulation_sign(self):
        f = LambOseenVortex(gamma=-1.0)
        v = f(np.array([[1.0, 0.0, 0.0]]))[0]
        assert v[1] < 0  # clockwise

    def test_advection_moves_center(self):
        f = LambOseenVortex(gamma=1.0, advect=[1.0, 0.0, 0.0])
        v0 = f(np.array([[2.0, 0.0, 0.0]]), t=2.0)[0]
        np.testing.assert_allclose(v0, 0.0, atol=1e-12)  # point is at center now

    def test_invalid_core(self):
        with pytest.raises(ValueError):
            LambOseenVortex(gamma=1.0, core_radius=0.0)


class TestABCFlow:
    def test_is_steady(self):
        f = ABCFlow()
        p = np.random.default_rng(0).normal(size=(5, 3))
        np.testing.assert_allclose(f(p, 0.0), f(p, 10.0))

    def test_beltrami_property(self):
        """ABC flow is a Beltrami flow: curl(v) = v (for these coefficients)."""
        f = ABCFlow(a=1.0, b=0.7, c=0.4)
        p = np.array([[0.3, 1.2, -0.7]])
        eps = 1e-6
        jac = np.empty((3, 3))
        for b in range(3):
            dp = np.zeros(3)
            dp[b] = eps
            jac[:, b] = (f(p + dp)[0] - f(p - dp)[0]) / (2 * eps)
        curl = np.array(
            [jac[2, 1] - jac[1, 2], jac[0, 2] - jac[2, 0], jac[1, 0] - jac[0, 1]]
        )
        np.testing.assert_allclose(curl, f(p)[0], atol=1e-5)


class TestShearLayerAndSuperposition:
    def test_shear_layer_unsteady(self):
        f = OscillatingShearLayer()
        p = np.array([[1.0, 0.0, 0.0]])
        assert not np.allclose(f(p, 0.0), f(p, 1.0))

    def test_superposition_adds(self):
        a = UniformFlow([1.0, 0.0, 0.0])
        b = UniformFlow([0.0, 2.0, 0.0])
        f = a + b
        np.testing.assert_allclose(f(np.zeros(3)), [1.0, 2.0, 0.0])

    def test_superposition_flattens(self):
        f = UniformFlow() + UniformFlow() + UniformFlow()
        assert isinstance(f, Superposition)
        assert len(f.components) == 3

    def test_empty_superposition_rejected(self):
        with pytest.raises(ValueError):
            Superposition([])

    @given(pts_strategy, st.floats(0, 5, allow_nan=False))
    @settings(max_examples=25)
    def test_superposition_is_linear(self, pts, t):
        a = RigidRotation()
        b = UniformFlow([0.5, -1.0, 0.25])
        np.testing.assert_allclose(
            (a + b)(pts, t), a(pts, t) + b(pts, t), atol=1e-12
        )


class TestDoubleGyre:
    def test_walls_are_impermeable(self):
        """v = 0 on y=0 and y=1; u = 0 on x=0 and x=2 (closed box)."""
        from repro.flow import DoubleGyre

        f = DoubleGyre()
        for t in (0.0, 2.5, 7.1):
            top = f(np.stack([np.linspace(0, 2, 9), np.ones(9), np.zeros(9)], 1), t)
            bottom = f(np.stack([np.linspace(0, 2, 9), np.zeros(9), np.zeros(9)], 1), t)
            np.testing.assert_allclose(top[:, 1], 0.0, atol=1e-12)
            np.testing.assert_allclose(bottom[:, 1], 0.0, atol=1e-12)
            left = f(np.stack([np.zeros(9), np.linspace(0, 1, 9), np.zeros(9)], 1), t)
            right = f(np.stack([2 * np.ones(9), np.linspace(0, 1, 9), np.zeros(9)], 1), t)
            np.testing.assert_allclose(left[:, 0], 0.0, atol=1e-12)
            np.testing.assert_allclose(right[:, 0], 0.0, atol=1e-12)

    def test_time_periodic(self):
        from repro.flow import DoubleGyre

        f = DoubleGyre(omega=2 * np.pi / 10.0)
        p = np.array([[0.7, 0.3, 0.0]])
        np.testing.assert_allclose(f(p, 1.3), f(p, 11.3), atol=1e-12)

    def test_unsteady_when_perturbed(self):
        from repro.flow import DoubleGyre

        f = DoubleGyre(eps=0.25)
        p = np.array([[0.7, 0.3, 0.0]])
        assert not np.allclose(f(p, 0.0), f(p, 2.5))

    def test_steady_when_unperturbed(self):
        from repro.flow import DoubleGyre

        f = DoubleGyre(eps=0.0)
        p = np.array([[0.7, 0.3, 0.0]])
        np.testing.assert_allclose(f(p, 0.0), f(p, 3.7), atol=1e-12)
