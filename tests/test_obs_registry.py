"""Unit tests for the metrics registry (repro.obs.registry)."""

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_registry


class TestCounter:
    def test_starts_at_zero_and_counts(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="monotone"):
            Counter("c").inc(-1)

    def test_concurrent_increments_are_exact(self):
        c = Counter("c")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(2.5)
        assert g.value == 2.5
        g.inc()
        g.dec(0.5)
        assert g.value == 3.0


class TestHistogram:
    def test_empty_snapshot_is_all_zero(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == snap["p95"] == snap["p99"] == 0.0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_quantile_of_empty_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_streaming_stats_are_exact_over_full_history(self):
        h = Histogram("h", window=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 6
        assert snap["mean"] == pytest.approx(3.5)
        assert snap["min"] == 1.0 and snap["max"] == 6.0
        assert snap["total"] == pytest.approx(21.0)

    def test_quantiles_describe_the_recent_window_only(self):
        # One early catastrophe must age out of the ring: after `window`
        # fresh samples, p50/p99 describe now, not the process's life.
        h = Histogram("h", window=8)
        h.observe(1000.0)
        for _ in range(8):
            h.observe(0.01)
        assert h.quantile(0.99) == pytest.approx(0.01)
        assert h.snapshot()["max"] == 1000.0  # history keeps the peak

    def test_quantile_ordering(self):
        h = Histogram("h")
        for v in range(100):
            h.observe(v / 100.0)
        snap = h.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
        assert snap["p50"] == pytest.approx(0.495, abs=0.02)


class TestMetricsRegistry:
    def test_instruments_are_shared_by_name(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.gauge("y") is r.gauge("y")
        assert r.histogram("z") is r.histogram("z")

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("dual")
        with pytest.raises(ValueError, match="different kind"):
            r.gauge("dual")
        with pytest.raises(ValueError, match="different kind"):
            r.histogram("dual")

    def test_snapshot_is_plain_sorted_data(self):
        r = MetricsRegistry()
        r.counter("b.count").inc(2)
        r.counter("a.count").inc(1)
        r.gauge("level").set(0.5)
        r.histogram("lat").observe(0.1)
        snap = r.snapshot()
        assert list(snap["counters"]) == ["a.count", "b.count"]
        assert snap["counters"]["b.count"] == 2
        assert snap["gauges"]["level"] == 0.5
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_crosses_the_wire(self):
        from repro.dlib.protocol import decode_value, encode_value

        r = MetricsRegistry()
        r.counter("c").inc()
        r.histogram("h").observe(0.25)
        snap = r.snapshot()
        assert decode_value(encode_value(snap)) == snap

    def test_default_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_registries_are_isolated(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc()
        assert b.counter("n").value == 0
