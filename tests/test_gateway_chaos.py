"""Chaos against a live gateway pool: SIGKILL and hang (issue 6).

The acceptance scenario: a 4-worker pool serving 8 sessions, a seeded
fault injector SIGKILLs a worker mid-frame, and every client of the dead
worker resumes transparently through ``wt.rejoin`` within a bounded
deadline — no torn frames, no duplicated rakes, and the gateway's
recovery counters reconcile exactly against the injected fault count.
A second scenario wedges a worker's service loop (``wt.chaos_hang``) and
checks the supervisor's liveness deadline converts the hang into a crash
it already knows how to recover.
"""

import threading
import time

import pytest

from repro.core import WindtunnelClient
from repro.gateway import SessionGateway, default_worker_spec
from repro.netsim import ProcessFaults

JOIN_DEADLINE = 60.0
RECOVER_DEADLINE = 30.0


@pytest.fixture(scope="module")
def gateway():
    spec = default_worker_spec(allow_chaos=True, frame_wait=2.0)
    gw = SessionGateway(
        spec,
        n_workers=4,
        max_sessions_per_worker=4,
        heartbeat_interval=0.2,
        liveness_deadline=0.75,
        probe_failures_to_kill=2,
        recovery_wait=20.0,
        route_timeout=3.0,
    )
    with gw:
        yield gw


def counter(gw, name):
    return gw.registry.counter(name).value


def fetch_all_within(clients, deadline):
    """Every client serves a frame inside ``deadline``; returns the frames."""
    t0 = time.monotonic()
    frames = {}
    pending = list(clients)
    last_error = None
    while pending and time.monotonic() - t0 < deadline:
        still = []
        for c in pending:
            try:
                frames[c] = c.fetch_frame()
            except Exception as exc:  # noqa: BLE001 - retried until deadline
                last_error = exc
                still.append(c)
        pending = still
        if pending:
            time.sleep(0.25)
    assert not pending, (
        f"{len(pending)} clients still failing after {deadline}s: {last_error!r}"
    )
    return frames


class TestSigkillRecovery:
    def test_worker_sigkill_mid_frame_all_sessions_resume(self, gateway):
        host, port = gateway.address
        clients = [
            WindtunnelClient(host, port, name=f"chaos{i}") for i in range(8)
        ]
        try:
            rakes = {}
            for i, c in enumerate(clients):
                rakes[c] = c.add_rake(
                    (0.5 * i - 2.0, -1.0, 0.5), (0.5 * i - 2.0, 1.0, 0.5),
                    n_seeds=3,
                )
            fetch_all_within(clients, JOIN_DEADLINE)

            seat = {c: gateway.journal.worker_of(c.client_id) for c in clients}
            assert sorted(gateway.journal.load().values()) == [2, 2, 2, 2]

            faults = ProcessFaults(seed=11, registry=gateway.registry)
            victim = faults.choose(sorted(set(seat.values())))
            victims = [c for c in clients if seat[c] == victim]
            bystanders = [c for c in clients if seat[c] != victim]
            assert len(victims) == 2

            recovered0 = counter(gateway, "gateway.sessions_recovered")
            respawned0 = counter(gateway, "gateway.workers_respawned")
            rejoins0 = counter(gateway, "gateway.rejoins")

            # Keep a request in flight against the victim while it dies.
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    try:
                        victims[0].fetch_frame()
                    except Exception:  # noqa: BLE001 - mid-kill turbulence
                        time.sleep(0.05)

            t = threading.Thread(target=hammer, daemon=True)
            t.start()
            time.sleep(0.2)  # let the hammer get airborne
            faults.kill(gateway.supervisor.handle_of(victim))
            time.sleep(0.5)
            stop.set()
            t.join(timeout=RECOVER_DEADLINE)
            assert not t.is_alive()

            frames = fetch_all_within(clients, RECOVER_DEADLINE)

            # The client with a request in flight at kill time crossed a
            # dead worker and resumed through wt.rejoin.  Idle victims
            # may never notice at all — the supervisor restored their
            # leases before their next call, which is the point — but
            # nobody *outside* the blast radius rejoins.
            assert victims[0].rejoins >= 1, "in-flight client never rejoined"
            assert counter(gateway, "gateway.rejoins") - rejoins0 >= 1
            for c in bystanders:
                assert c.rejoins == 0, f"client {c.client_id} rejoined needlessly"

            # No torn frames: each client's own rake survives, exactly
            # once, in both its frame and the restored worker's world.
            for c in clients:
                paths = frames[c]["paths"]
                assert str(rakes[c]) in paths, (
                    f"client {c.client_id} lost rake {rakes[c]}"
                )
            snap = victims[0]._call("wt.snapshot", victims[0].client_id)
            journal_rakes = set(gateway.journal.recovery_state(victim)["rakes"])
            assert set(snap["rakes"]) == journal_rakes  # no dupes, no losses

            # Reconcile injected faults against observed recoveries.
            assert faults.stats.kills == 1
            assert counter(gateway, "faults.kills") == 1
            assert (
                counter(gateway, "gateway.sessions_recovered") - recovered0
                == len(victims)
            )
            assert counter(gateway, "gateway.workers_respawned") - respawned0 == 1
        finally:
            for c in clients:
                try:
                    c.close()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass

    def test_journal_empties_after_clean_leaves(self, gateway):
        # The previous test's clients all left in teardown; once the
        # departures land the pool is entirely reclaimable.
        assert gateway.journal.total_sessions == 0
        assert all(n == 0 for n in gateway.journal.load().values())


class TestHangRecovery:
    def test_hung_worker_is_killed_and_sessions_resume(self, gateway):
        host, port = gateway.address
        faults = ProcessFaults(seed=5, registry=gateway.registry)
        hung0 = counter(gateway, "gateway.workers_hung")
        with WindtunnelClient(host, port, name="hangmark") as c:
            fetch_all_within([c], JOIN_DEADLINE)
            worker = gateway.journal.worker_of(c.client_id)
            faults.hang(gateway.supervisor.address_of(worker), 30.0)
            # The wedged worker still *accepts* connections — only the
            # liveness deadline can tell it from a busy one.  The next
            # frame times out at the gateway, the client rejoins, and the
            # supervisor's probe misses convert the hang into a respawn.
            frames = fetch_all_within([c], RECOVER_DEADLINE)
            assert frames[c]["timestep"] >= 0
            assert c.rejoins >= 1
        assert faults.stats.hangs == 1
        assert counter(gateway, "gateway.workers_hung") - hung0 == 1
