"""Tests for the extension RPCs: runtime tool settings and isosurfaces."""

import numpy as np
import pytest

from repro.core import ToolSettings, WindtunnelClient, WindtunnelServer
from repro.dlib import DlibRemoteError
from repro.flow import MemoryDataset, RigidRotation, sample_on_grid
from repro.grid import cartesian_grid
from repro.render import Camera, Framebuffer, Scene, TriangleMesh
from repro.util import look_at


@pytest.fixture(scope="module")
def server():
    grid = cartesian_grid((12, 12, 6), lo=(-2, -2, 0), hi=(2, 2, 1))
    vel = sample_on_grid(
        RigidRotation(omega=[0, 0, 1.0]), grid, np.arange(4) * 0.2, dtype=np.float64
    )
    srv = WindtunnelServer(
        MemoryDataset(grid, vel, dt=0.2),
        settings=ToolSettings(streamline_steps=30),
        time_fn=lambda: 0.0,
    )
    srv.start()
    yield srv
    srv.stop()


class TestToolSettingsRPC:
    def test_change_applies_to_next_frame(self, server):
        with WindtunnelClient(*server.address) as c:
            rid = c.add_rake([-1, 0, 0.5], [1, 0, 0.5], n_seeds=3)
            before = c.fetch_frame()
            out = c.set_tool_settings(streamline_steps=10)
            assert out["streamline_steps"] == 10
            after = c.fetch_frame()
            n_before = before["paths"][str(rid)]["vertices"].shape[1]
            n_after = after["paths"][str(rid)]["vertices"].shape[1]
            assert n_after == 11 < n_before
            c.remove_rake(rid)
            c.set_tool_settings(streamline_steps=30)

    def test_settings_shared_between_users(self, server):
        with WindtunnelClient(*server.address) as a, WindtunnelClient(
            *server.address
        ) as b:
            a.set_tool_settings(streakline_length=17)
            out = b.set_tool_settings(streamline_dt=0.04)
            assert out["streakline_length"] == 17

    def test_unknown_setting_rejected(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c.set_tool_settings(warp_factor=9)

    def test_nonpositive_rejected(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c.set_tool_settings(streamline_steps=0)


class TestIsosurfaceRPC:
    def test_returns_triangles(self, server):
        with WindtunnelClient(*server.address) as c:
            out = c.request_isosurface(0.5)
            assert out["n_triangles"] > 0
            assert out["triangles"].dtype == np.float32
            assert out["triangles"].shape == (out["n_triangles"], 3, 3)
            # Rotation speed = radius: the |v| contour is a cylinder of
            # that radius around the z axis.
            radii = np.linalg.norm(
                out["triangles"].reshape(-1, 3)[:, :2], axis=1
            )
            np.testing.assert_allclose(radii, out["level"], atol=0.15)

    def test_cached_across_clients(self, server):
        with WindtunnelClient(*server.address) as a, WindtunnelClient(
            *server.address
        ) as b:
            ta = a.request_isosurface(0.5)["triangles"]
            tb = b.request_isosurface(0.5)["triangles"]
            np.testing.assert_array_equal(ta, tb)

    def test_level_validation(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c.request_isosurface(1.5)

    def test_renders_as_wireframe(self, server):
        with WindtunnelClient(*server.address) as c:
            out = c.request_isosurface(0.5)
        fb = Framebuffer(96, 72)
        cam = Camera(look_at([0, -6, 2], [0, 0, 0.5], up=[0, 0, 1]))
        scene = Scene([TriangleMesh(out["triangles"].astype(np.float64))])
        written = scene.draw(fb, cam)
        assert written > 50

    def test_empty_mesh_draws_nothing(self):
        fb = Framebuffer(32, 32)
        cam = Camera()
        assert TriangleMesh(np.empty((0, 3, 3))).draw(fb, cam, None) == 0

    def test_mesh_validation(self):
        fb = Framebuffer(32, 32)
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((2, 3))).draw(fb, Camera(), None)
