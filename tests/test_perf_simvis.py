"""Tests for the in situ sim/vis coupling model (BENCH_10's analytic half)."""

import pytest

from repro.perf import SimVisModel


def model(**overrides):
    base = dict(
        step_seconds=0.002,
        steps_per_timestep=5,
        publish_seconds=0.004,
        vis_seconds=0.020,
    )
    base.update(overrides)
    return SimVisModel(**base)


class TestRates:
    def test_sim_timestep_cost_composes(self):
        m = model()
        assert m.sim_timestep_seconds == pytest.approx(0.014)
        assert m.sim_rate_hz == pytest.approx(1.0 / 0.014)

    def test_achievable_fps_is_the_slower_clock(self):
        # Vis-bound: the pipeline caps what a viewer sees.
        assert model().achievable_fps() == pytest.approx(50.0)
        # Sim-bound: a heavy solver caps it instead.
        heavy = model(step_seconds=0.02)
        assert heavy.achievable_fps() == pytest.approx(heavy.sim_rate_hz)

    def test_frames_behind_scales_with_vis_cost(self):
        m = model()
        assert m.frames_behind() == pytest.approx(0.020 / 0.014)
        assert model(vis_seconds=0.0).frames_behind() == 0.0

    def test_zero_costs_degenerate_sanely(self):
        free = SimVisModel(step_seconds=0.0, steps_per_timestep=1)
        assert free.sim_rate_hz == float("inf")
        assert free.achievable_fps() == float("inf")
        assert free.steering_latency_frames() == 1


class TestSteeringLatency:
    def test_worst_case_bound(self):
        m = model()
        # Finish the in-flight timestep, produce the first steered one,
        # then one frame production.
        assert m.steering_latency_seconds() == pytest.approx(
            2 * 0.014 + 0.020
        )

    def test_latency_in_frames_is_ceiled_and_positive(self):
        m = model()
        frames = m.steering_latency_frames()
        assert frames >= 1
        assert frames >= m.steering_latency_seconds() * m.achievable_fps() - 1


class TestValidationAndFit:
    def test_rejects_negative_and_zero(self):
        with pytest.raises(ValueError):
            SimVisModel(step_seconds=-1.0, steps_per_timestep=5)
        with pytest.raises(ValueError):
            SimVisModel(step_seconds=0.1, steps_per_timestep=0)
        with pytest.raises(ValueError):
            SimVisModel(step_seconds=0.1, steps_per_timestep=1, vis_seconds=-1)

    def test_fit_uses_means(self):
        m = SimVisModel.fit(
            [0.001, 0.003],
            steps_per_timestep=4,
            publish_samples=[0.002, 0.002],
            vis_samples=[0.01, 0.03],
        )
        assert m.step_seconds == pytest.approx(0.002)
        assert m.publish_seconds == pytest.approx(0.002)
        assert m.vis_seconds == pytest.approx(0.02)
        assert m.steps_per_timestep == 4

    def test_fit_needs_step_samples(self):
        with pytest.raises(ValueError):
            SimVisModel.fit([], steps_per_timestep=2)

    def test_fit_without_optional_samples(self):
        m = SimVisModel.fit([0.002], steps_per_timestep=2)
        assert m.publish_seconds == 0.0 and m.vis_seconds == 0.0
