"""Tests for the headless sweep runner (repro.sweep.runner) and the
per-run metrics-registry scoping it depends on (repro.obs.scoped_registry).
"""

import threading

import pytest

from repro.obs import MetricsRegistry, get_registry, scoped_registry
from repro.sweep import ResultsStore, SweepManifest, SweepRunner, run_scenario
from repro.sweep.manifest import ScenarioError
from repro.sweep.runner import RUN_METRICS


def tiny_manifest(**over):
    raw = {
        "name": "tiny",
        "base": {
            "shape": [8, 8, 5],
            "timesteps": 2,
            "frames": 2,
            "seeds_per_rake": 2,
            "streamline_steps": 6,
            "streakline_length": 4,
        },
    }
    raw.update(over)
    return SweepManifest.from_dict(raw)


class TestScopedRegistry:
    def test_scope_overrides_default(self):
        mine = MetricsRegistry()
        before = get_registry()
        with scoped_registry(mine):
            assert get_registry() is mine
        assert get_registry() is before

    def test_scope_creates_registry_when_omitted(self):
        with scoped_registry() as reg:
            assert get_registry() is reg
            assert isinstance(reg, MetricsRegistry)

    def test_scopes_nest(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        with scoped_registry(a):
            with scoped_registry(b):
                assert get_registry() is b
            assert get_registry() is a

    def test_scope_is_thread_local(self):
        mine = MetricsRegistry()
        seen = {}

        def worker():
            seen["other"] = get_registry()

        with scoped_registry(mine):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["other"] is not mine

    def test_scope_pops_on_exception(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with scoped_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is before


class TestRunScenario:
    def test_record_shape_and_metrics(self):
        (scenario,) = tiny_manifest().expand()
        record = run_scenario(scenario)
        assert record["status"] == "ok"
        assert record["scenario_id"] == scenario.scenario_id
        for name in RUN_METRICS:
            assert name in record["metrics"], name
        m = record["metrics"]
        assert m["points_total"] > 0
        assert m["bytes_per_frame"] > 0
        assert m["frames"] == 2
        assert m["faults_injected"] == 0

    def test_run_is_deterministic_in_wire_metrics(self):
        (scenario,) = tiny_manifest().expand()
        a = run_scenario(scenario)["metrics"]
        b = run_scenario(scenario)["metrics"]
        for name in ("bytes_per_frame", "points_total",
                     "encodes_per_publication", "faults_injected"):
            assert a[name] == b[name], name

    def test_fault_profile_counters_land_in_record(self):
        manifest = tiny_manifest(
            base={
                "shape": [8, 8, 5], "timesteps": 2, "frames": 6,
                "seeds_per_rake": 2, "streamline_steps": 6,
                "streakline_length": 4, "fault_profile": "lossy",
            },
            faults={"lossy": {"seed": 3, "drop_rate": 0.5,
                              "corrupt_rate": 0.3}},
        )
        (scenario,) = manifest.expand()
        record = run_scenario(scenario)
        m = record["metrics"]
        assert m["faults_injected"] > 0
        injected = ("drops", "duplicates", "corruptions", "stalls",
                    "disconnects")
        assert m["faults_injected"] == sum(
            m["faults"].get(k, 0) for k in injected
        )
        # Dropped frames never reach the loopback, so delivered < sent.
        assert m["delivered_bytes"] < m["wire_bytes_total"]
        assert any(k.startswith("faults.") for k in record["obs"]["counters"])

    def test_decimation_shrinks_the_wire(self):
        base = {
            "shape": [8, 8, 5], "timesteps": 2, "frames": 2,
            "seeds_per_rake": 4, "streamline_steps": 12,
            "streakline_length": 4,
        }
        (full,) = tiny_manifest(base=dict(base, decimate=1)).expand()
        (dec,) = tiny_manifest(base=dict(base, decimate=4)).expand()
        full_m = run_scenario(full)["metrics"]
        dec_m = run_scenario(dec)["metrics"]
        assert dec_m["bytes_per_frame"] < full_m["bytes_per_frame"]

    def test_runs_do_not_bleed_into_default_registry(self):
        (scenario,) = tiny_manifest().expand()
        default_before = set(get_registry().snapshot()["counters"])
        run_scenario(scenario)
        default_after = set(get_registry().snapshot()["counters"])
        assert "sweep.frames" not in default_after - default_before

    def test_keyframe_written(self, tmp_path):
        (scenario,) = tiny_manifest().expand()
        path = tmp_path / "kf.ppm"
        run_scenario(scenario, keyframe_path=path)
        data = path.read_bytes()
        assert data.startswith(b"P6")


class TestSweepRunner:
    def test_parallel_sweep_populates_store(self, tmp_path):
        manifest = tiny_manifest(axes={"encoding": ["v1", "f16", "q16"]})
        runner = SweepRunner(manifest, tmp_path / "store", workers=3)
        outcome = runner.run()
        assert outcome.succeeded
        assert outcome.ok == 3
        store = ResultsStore(tmp_path / "store")
        runs = store.runs()
        assert len(runs) == 3
        header = store.header()
        assert header["summary"]["ok"] == 3
        assert header["manifest_digest"] == manifest.digest

    def test_parallel_runs_have_isolated_metrics(self, tmp_path):
        # Three concurrent scenarios; each record's frame counter must be
        # exactly its own frames, not a sum across threads.
        manifest = tiny_manifest(axes={"encoding": ["v1", "f16", "q16"]})
        outcome = SweepRunner(manifest, tmp_path / "s", workers=3).run()
        for record in outcome.records:
            assert record["obs"]["counters"]["sweep.frames"] == 2

    def test_progress_callback_sees_every_record(self, tmp_path):
        manifest = tiny_manifest(axes={"fused": [True, False]})
        seen = []
        SweepRunner(manifest, tmp_path / "s", workers=2).run(
            progress=seen.append
        )
        assert sorted(r["scenario_id"] for r in seen) == sorted(
            s.scenario_id for s in manifest.expand()
        )

    def test_engine_crash_is_recorded_not_raised(self, tmp_path, monkeypatch):
        import repro.sweep.runner as runner_mod

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(runner_mod, "tapered_cylinder_dataset", boom)
        manifest = tiny_manifest()
        outcome = SweepRunner(manifest, tmp_path / "s", workers=1).run()
        assert not outcome.succeeded
        (record,) = outcome.records
        assert record["status"] == "error"
        assert record["error"]["type"] == "RuntimeError"
        # The store still holds the record and the summary counts it.
        store = ResultsStore(tmp_path / "s")
        assert store.header()["summary"]["errors"] == 1

    def test_zero_workers_rejected(self, tmp_path):
        with pytest.raises(ScenarioError) as exc_info:
            SweepRunner(tiny_manifest(), tmp_path / "s", workers=0)
        assert exc_info.value.key == "workers"

    def test_store_reader_errors_are_typed(self, tmp_path):
        store = ResultsStore(tmp_path / "nothing")
        with pytest.raises(ScenarioError):
            store.header()
        with pytest.raises(ScenarioError):
            store.runs()


class TestSweepRunCli:
    def _manifest(self, tmp_path):
        import json

        path = tmp_path / "m.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli",
                    "base": {
                        "shape": [8, 8, 5], "timesteps": 2, "frames": 2,
                        "seeds_per_rake": 2, "streamline_steps": 6,
                        "streakline_length": 4,
                    },
                    "axes": {"encoding": ["v1", "q16"]},
                }
            ),
            encoding="utf-8",
        )
        return path

    def test_run_writes_store_and_exits_zero(self, tmp_path):
        import io

        from repro.cli import main as cli_main

        out = io.StringIO()
        code = cli_main(
            ["sweep", "run", str(self._manifest(tmp_path)),
             "--store", str(tmp_path / "s"), "--workers", "2"],
            out=out,
        )
        assert code == 0
        assert "2 scenario(s)" in out.getvalue()
        assert ResultsStore(tmp_path / "s").header()["summary"]["ok"] == 2

    def test_run_bad_manifest_exits_two_with_named_key(self, tmp_path):
        import io
        import json

        from repro.cli import main as cli_main

        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"name": "x", "base": {"encoding": "v9"}}),
            encoding="utf-8",
        )
        out = io.StringIO()
        code = cli_main(
            ["sweep", "run", str(path), "--store", str(tmp_path / "s")],
            out=out,
        )
        assert code == 2
        assert "base.encoding" in out.getvalue()


class TestDatasetSharing:
    def test_pool_reuses_by_geometry(self):
        from repro.sweep.runner import DatasetPool

        manifest = tiny_manifest(axes={"encoding": ["v1", "f16"]})
        a, b = manifest.expand()
        pool = DatasetPool()
        ds_a, cache_a = pool.acquire(a)
        ds_b, cache_b = pool.acquire(b)
        # Same (shape, timesteps): one dataset, one shared tier-1 cache.
        assert ds_a is ds_b and cache_a is cache_b
        assert pool.datasets_built == 1 and pool.reuses == 1
        big = tiny_manifest(
            base={
                "shape": [10, 8, 5], "timesteps": 2, "frames": 2,
                "seeds_per_rake": 2, "streamline_steps": 6,
                "streakline_length": 4,
            }
        ).expand()[0]
        ds_c, _ = pool.acquire(big)
        assert ds_c is not ds_a
        assert pool.datasets_built == 2

    def test_summary_reports_shared_cache_totals(self, tmp_path):
        manifest = tiny_manifest(axes={"encoding": ["v1", "f16", "q16"]})
        runner = SweepRunner(manifest, tmp_path / "s", workers=1)
        assert runner.run().succeeded
        summary = ResultsStore(tmp_path / "s").header()["summary"]
        cache = summary["dataset_cache"]
        # Three scenarios, one geometry: the dataset is built once and
        # its two timesteps are decoded once for the whole sweep.
        assert cache["datasets"] == 1
        assert cache["datasets_built"] == 1
        assert cache["dataset_reuses"] == 2
        assert cache["l1_misses"] == 2
        assert cache["l1_hits"] > 0
        assert cache["l1_resident_bytes"] > 0

    def test_records_are_identical_with_and_without_sharing(self, tmp_path):
        # Sharing is a pure perf change: per-run records must stay
        # byte-deterministic, with the shared cache's counters kept out.
        manifest = tiny_manifest(axes={"encoding": ["v1", "f16"]})
        shared = SweepRunner(
            manifest, tmp_path / "a", workers=2, share_datasets=True
        ).run()
        private = SweepRunner(
            manifest, tmp_path / "b", workers=2, share_datasets=False
        ).run()
        by_id = lambda o: {r["scenario_id"]: r for r in o.records}  # noqa: E731
        a, b = by_id(shared), by_id(private)
        assert a.keys() == b.keys()
        for sid in a:
            assert a[sid]["obs"]["counters"] == b[sid]["obs"]["counters"]
            for name in ("bytes_per_frame", "points_total",
                         "encodes_per_publication", "faults_injected"):
                assert a[sid]["metrics"][name] == b[sid]["metrics"][name]
            assert not any(
                k.startswith("cache.") for k in a[sid]["obs"]["counters"]
            )

    def test_share_datasets_false_restores_isolation(self, tmp_path):
        manifest = tiny_manifest(axes={"encoding": ["v1", "f16"]})
        runner = SweepRunner(
            manifest, tmp_path / "s", workers=2, share_datasets=False
        )
        assert runner.dataset_pool is None
        assert runner.run().succeeded
        assert "dataset_cache" not in (
            ResultsStore(tmp_path / "s").header()["summary"]
        )
