"""Tests for TimeControl — the paper's interactive time control.

Timing-flakiness audit: every test here drives TimeControl with
explicit wall-clock *values* (``tc.position(1.0)``) — rule 3 of the
de-flaking pattern in ``tests/__init__.py``.  No real clock is read and
nothing sleeps, so these tests are deterministic by construction.
"""

import pytest

from repro.core import TimeControl


class TestPlayback:
    def test_forward_playback(self):
        tc = TimeControl(100, speed=10.0)
        assert tc.position(0.0) == 0.0
        assert tc.position(1.0) == pytest.approx(10.0)
        assert tc.timestep_index(1.55) == 15

    def test_wraps_by_default(self):
        tc = TimeControl(10, speed=10.0)
        assert tc.position(1.5) == pytest.approx(5.0)
        assert tc.timestep_index(1.5) == 5

    def test_clamp_mode(self):
        tc = TimeControl(10, speed=10.0, wrap=False)
        assert tc.position(99.0) == pytest.approx(9.0)
        tc2 = TimeControl(10, speed=-10.0, wrap=False)
        assert tc2.position(99.0) == 0.0

    def test_single_timestep(self):
        tc = TimeControl(1, speed=10.0)
        assert tc.position(123.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeControl(0)


class TestControls:
    def test_backwards(self):
        """'run backwards' — negative speed, wrapping below zero."""
        tc = TimeControl(100, speed=-10.0)
        assert tc.position(1.0) == pytest.approx(90.0)
        assert tc.direction == -1

    def test_pause_freezes_position(self):
        tc = TimeControl(100, speed=10.0)
        tc.pause(wall=2.0)
        assert tc.position(50.0) == pytest.approx(20.0)
        assert not tc.playing

    def test_resume_continues_from_pause_point(self):
        tc = TimeControl(100, speed=10.0)
        tc.pause(wall=2.0)
        tc.resume(wall=10.0)
        assert tc.position(11.0) == pytest.approx(30.0)

    def test_speed_change_reanchors(self):
        """'sped up, slowed down' without a position jump."""
        tc = TimeControl(1000, speed=10.0)
        tc.set_speed(100.0, wall=2.0)
        assert tc.position(2.0) == pytest.approx(20.0)  # continuous
        assert tc.position(3.0) == pytest.approx(120.0)

    def test_reverse_is_continuous(self):
        tc = TimeControl(1000, speed=10.0)
        tc.reverse(wall=5.0)
        assert tc.position(5.0) == pytest.approx(50.0)
        assert tc.position(6.0) == pytest.approx(40.0)
        assert tc.speed == -10.0

    def test_scrub(self):
        tc = TimeControl(100, speed=10.0)
        tc.scrub(42.0, wall=1.0)
        assert tc.position(1.0) == pytest.approx(42.0)

    def test_step_while_paused(self):
        """'stopped completely for detailed examination' + frame stepping."""
        tc = TimeControl(100, speed=10.0)
        tc.pause(wall=1.0)
        tc.step(+1, wall=5.0)
        assert tc.timestep_index(9.0) == 11
        tc.step(-2, wall=9.0)
        assert tc.timestep_index(9.0) == 9

    def test_snapshot(self):
        tc = TimeControl(50, speed=5.0)
        snap = tc.snapshot(2.0)
        assert snap["timestep"] == 10
        assert snap["speed"] == 5.0
        assert snap["playing"] is True
        assert snap["n_timesteps"] == 50
