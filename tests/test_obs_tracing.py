"""End-to-end request tracing: the observability acceptance tests.

The headline property (ISSUE 3 acceptance): a traced ``wt.frame`` call
returns a span tree whose spans tile the server-side latency, and the
client-observed RPC latency brackets that tree — every millisecond the
user waited is attributed to a named stage or to the wire.

Also here: old-format interoperability.  A client speaking the
pre-extension wire format (no trace field in the header) must work
against the traced server unchanged, byte for byte.
"""

import struct

import numpy as np
import pytest

from repro.core import ToolSettings, WindtunnelClient, WindtunnelServer
from repro.core.pipeline import STAGES
from repro.dlib.protocol import (
    MessageKind,
    decode_message,
    encode_message,
    encode_value,
)
from repro.dlib.transport import connect_tcp
from repro.flow import MemoryDataset, RigidRotation, sample_on_grid
from repro.grid import cartesian_grid

#: Slack on wall-clock brackets.  One-sided bounds are exact (client and
#: server share one perf_counter in-process); this only guards against a
#: pathologically loaded box, it does not pace the test.
WALL_SLACK = 1.0


def make_dataset(n_times=4):
    grid = cartesian_grid((9, 9, 5), lo=(0, 0, 0), hi=(8, 8, 4))
    vel = sample_on_grid(
        RigidRotation(omega=[0, 0, 0.5], center=[4, 4, 0]), grid,
        np.arange(n_times) * 0.2, dtype=np.float64,
    )
    return MemoryDataset(grid, vel, dt=0.2)


@pytest.fixture(scope="module")
def server():
    srv = WindtunnelServer(
        make_dataset(), settings=ToolSettings(streamline_steps=12),
        time_fn=lambda: 0.0,
    )
    srv.start()
    yield srv
    srv.stop()


def span_names(wire):
    return [c["name"] for c in wire["children"]]


def find(wire, name):
    for child in wire["children"]:
        if child["name"] == name:
            return child
    raise AssertionError(f"span {name!r} not in {span_names(wire)}")


class TestTracedFrameCall:
    def test_span_tree_sums_to_client_latency(self, server):
        """The acceptance criterion, verbatim."""
        with WindtunnelClient(*server.address, trace=True) as c:
            rid = c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=3)
            try:
                state = c.fetch_frame()
                tree = c.last_trace
                client_seconds = c._rpc.last_latency

                assert tree is not None
                assert tree["proc"] == "wt.frame"
                if state["cached"]:
                    # Store hit: the reply is synchronous, the work
                    # nests inside the handler span.
                    assert span_names(tree) == [
                        "queue_wait", "handler", "encode",
                    ]
                    find(find(tree, "handler"), "snapshot")
                else:
                    # The call parked as a continuation: the handler
                    # span is just the dispatch that deferred, and the
                    # resolution-side spans follow it at top level.
                    assert span_names(tree) == [
                        "queue_wait", "handler", "frame_wait",
                        "snapshot", "encode",
                    ]

                # Either way the top-level spans tile the server-side
                # duration — frame_wait covers the whole parked
                # interval, nothing is double-counted.
                tiled = sum(ch["duration"] for ch in tree["children"])
                assert tiled <= tree["duration"] + 1e-6
                assert tiled == pytest.approx(tree["duration"], abs=0.005)

                # ... and the client-observed latency brackets the tree:
                # never less than the server spent (same perf_counter,
                # same process), never more than wire + decode slack.
                assert client_seconds >= tree["duration"] - 1e-6
                assert client_seconds <= tree["duration"] + WALL_SLACK

                # A fresh frame grafts the production stages into the
                # wait, and their compute portion matches the frame's
                # own accounting exactly.
                if not state["cached"]:
                    wait = find(tree, "frame_wait")
                    assert [c_["name"] for c_ in wait["children"]] == list(STAGES)
                    compute = sum(
                        c_["duration"]
                        for c_ in wait["children"]
                        if c_["name"] in ("load", "locate", "integrate")
                    )
                    assert compute == pytest.approx(
                        state["compute_seconds"], rel=1e-6
                    )
            finally:
                c.remove_rake(rid)

    def test_trace_ids_increase_and_cached_frames_have_no_stages(self, server):
        with WindtunnelClient(*server.address, trace=True) as c:
            first = c.fetch_frame()  # noqa: F841 - warm the frame store
            id1 = c.last_trace["trace_id"]
            state = c.fetch_frame()
            id2 = c.last_trace["trace_id"]
            assert id2 > id1
            if state["cached"]:
                # A store hit never waited: no frame_wait span at all,
                # and therefore no production stages anywhere.
                assert "frame_wait" not in span_names(c.last_trace)
                find(find(c.last_trace, "handler"), "snapshot")

    def test_trace_report_renders(self, server):
        with WindtunnelClient(*server.address, trace=True) as c:
            c.fetch_frame()
            text = c.trace_report()
            assert "wt.frame" in text
            assert "client observed" in text
            assert "handler" in text and "snapshot" in text

    def test_untraced_client_pays_nothing(self, server):
        with WindtunnelClient(*server.address) as c:
            state = c.fetch_frame()
            assert c.last_trace is None
            assert "paths" in state
            assert c.trace_report() == "no traced call yet"


class TestMetricsRpc:
    def test_wt_metrics_reconciles_with_activity(self, server):
        with WindtunnelClient(*server.address, trace=True) as c:
            c.fetch_frame()
            c.fetch_frame()
            out = c.metrics()
            counters = out["registry"]["counters"]
            hists = out["registry"]["histograms"]
            assert counters["wt.frames_served"] >= 2
            assert counters["dlib.calls_served"] >= 3  # join + 2 frames
            assert counters["pipeline.frames_produced"] >= 1
            assert hists["dlib.dispatch_seconds"]["count"] >= 2
            for q in ("p50", "p95", "p99"):
                assert hists["dlib.dispatch_seconds"][q] >= 0.0
            # The collector's copy of a trace carries the one span the
            # reply itself cannot: the socket write of that reply.
            assert out["traces_total"] >= 2
            latest = out["traces"][-1]
            assert "send" in span_names(latest)

    def test_server_counters_match_wt_stats(self, server):
        with WindtunnelClient(*server.address) as c:
            c.fetch_frame()
            stats = c.server_stats()
            reg = c.metrics()["registry"]["counters"]
            assert reg["wt.frames_served"] >= stats["frames_computed"]
            assert reg["dlib.calls_served"] > 0


class TestOldFormatInterop:
    """A pre-extension client against the traced server."""

    _OLD_HEADER = struct.Struct("<BI")

    def _old_call(self, stream, request_id, proc, *args):
        payload = {"proc": proc, "args": list(args), "kwargs": {}}
        stream.send(self._OLD_HEADER.pack(int(MessageKind.CALL), request_id)
                    + encode_value(payload))
        kind, rid, result = decode_message(stream.recv())
        assert kind is MessageKind.RESULT and rid == request_id
        return result

    def test_old_format_client_interoperates(self, server):
        stream = connect_tcp(*server.address)
        try:
            pong = self._old_call(stream, 1, "dlib.ping", "legacy")
            assert pong == "legacy"
            info = self._old_call(stream, 2, "wt.join", "legacy-client")
            state = self._old_call(stream, 3, "wt.frame", info["client_id"])
            assert "paths" in state and "env" in state
            # The reply is a plain result — no trace envelope leaked in.
            assert "t" not in state and "r" not in state
            self._old_call(stream, 4, "wt.leave", info["client_id"])
        finally:
            stream.close()

    def test_old_and_traced_clients_share_one_server(self, server):
        stream = connect_tcp(*server.address)
        try:
            with WindtunnelClient(*server.address, trace=True) as c:
                c.fetch_frame()
                assert c.last_trace is not None
                assert self._old_call(stream, 9, "dlib.ping", 42) == 42
                assert c.fetch_frame() is not None
        finally:
            stream.close()

    def test_new_untraced_wire_bytes_equal_old_format(self):
        payload = {"proc": "dlib.ping", "args": [1], "kwargs": {}}
        new = encode_message(MessageKind.CALL, 5, payload)
        old = self._OLD_HEADER.pack(int(MessageKind.CALL), 5) + encode_value(payload)
        assert new == old
