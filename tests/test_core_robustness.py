"""Robustness and integration edge cases for the core system."""

import socket
import threading
import time

import numpy as np
import pytest

from repro.core import ToolSettings, WindtunnelClient, WindtunnelServer
from repro.dlib import DlibRemoteError, RetryPolicy
from repro.dlib.transport import connect_tcp
from repro.flow import MemoryDataset, RigidRotation, sample_on_grid
from repro.grid import cartesian_grid
from repro.netsim import FaultPlan, FaultyChannel, NetworkModel, ThrottledChannel
from repro.util import look_at
from tests import wait_until

HEAD = look_at([4.0, -6.0, 2.0], [4.0, 4.0, 2.0], up=[0, 0, 1])


def make_dataset(n_times=4):
    grid = cartesian_grid((9, 9, 5), lo=(0, 0, 0), hi=(8, 8, 4))
    vel = sample_on_grid(
        RigidRotation(omega=[0, 0, 0.5], center=[4, 4, 0]), grid,
        np.arange(n_times) * 0.2, dtype=np.float64,
    )
    return MemoryDataset(grid, vel, dt=0.2)


@pytest.fixture(scope="module")
def server():
    srv = WindtunnelServer(
        make_dataset(), settings=ToolSettings(streamline_steps=15),
        time_fn=lambda: 0.0,
    )
    srv.start()
    yield srv
    srv.stop()


class TestInvalidRequests:
    def test_update_unknown_client(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c._rpc.call("wt.update", 9999, [0, 0, 0], [0, 0, 0], "open")

    def test_add_rake_unknown_client(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c._rpc.call("wt.add_rake", 9999, {
                    "end_a": [0, 0, 0], "end_b": [1, 0, 0],
                    "n_seeds": 3, "kind": "streamline", "rake_id": None,
                })

    def test_bad_rake_kind_rejected_client_side(self, server):
        """Rake validation fires locally, before any bytes hit the wire."""
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(ValueError):
                c.add_rake([0, 0, 0], [1, 0, 0], kind="isosurface")

    def test_remove_unknown_rake(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c.remove_rake(424242)

    def test_leave_twice(self, server):
        c = WindtunnelClient(*server.address)
        c.close()
        # Leaving is idempotent: a departed (or reaped) id leaves again as
        # a no-op, and the server keeps serving.
        with WindtunnelClient(*server.address) as c2:
            c2._rpc.call("wt.leave", c.client_id)
            assert c2.fetch_frame() is not None


class TestRakeOutsideDomain:
    def test_fully_outside_rake_yields_empty_paths(self, server):
        with WindtunnelClient(*server.address) as c:
            rid = c.add_rake([50, 50, 50], [60, 60, 60], n_seeds=4)
            try:
                state = c.fetch_frame()
                path = state["paths"][str(rid)]
                assert path["vertices"].shape[0] == 0
                # And it still renders without error (empty bundle).
                fb = c.render(HEAD)
                assert fb is not None
            finally:
                c.remove_rake(rid)

    def test_partially_outside_rake_keeps_inside_seeds(self, server):
        with WindtunnelClient(*server.address) as c:
            rid = c.add_rake([4.0, 4.0, 2.0], [4.0, 40.0, 2.0], n_seeds=8)
            try:
                state = c.fetch_frame()
                s = state["paths"][str(rid)]["vertices"].shape[0]
                assert 0 < s < 8
            finally:
                c.remove_rake(rid)


class TestThrottledEndToEnd:
    def test_client_over_slow_network_still_correct(self, server):
        """The full windtunnel runs over a bandwidth-limited channel."""
        raw = connect_tcp(*server.address)
        chan = ThrottledChannel(raw, NetworkModel("slowish", 2.0 * 2**20))
        with WindtunnelClient(stream=chan, width=120, height=90) as c:
            rid = c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            try:
                fb = c.frame(HEAD, [4, 4, 2])
                assert fb.nonblack_pixels() > 0
                assert chan.modeled_delay_total > 0
            finally:
                c.remove_rake(rid)


class TestManyClients:
    def test_six_clients_share_one_compute(self, server):
        clients = [WindtunnelClient(*server.address) for _ in range(6)]
        try:
            rid = clients[0].add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            computed_before = server.frames_computed
            states = [c.fetch_frame() for c in clients]
            assert server.frames_computed == computed_before + 1
            ref = list(states[0]["paths"].values())[0]["vertices"]
            for s in states[1:]:
                np.testing.assert_array_equal(
                    list(s["paths"].values())[0]["vertices"], ref
                )
            clients[0].remove_rake(rid)
        finally:
            for c in clients:
                c.close()

    def test_user_count_tracks_sessions(self, server):
        before = len(server.env.users)
        a = WindtunnelClient(*server.address)
        b = WindtunnelClient(*server.address)
        assert len(server.env.users) == before + 2
        a.close()
        b.close()
        assert len(server.env.users) == before


@pytest.fixture()
def leased_server():
    """A windtunnel with a short session lease and a fast reaper."""
    srv = WindtunnelServer(
        make_dataset(),
        settings=ToolSettings(streamline_steps=10),
        lease_seconds=0.4,
        reap_interval=0.05,
    )
    srv.start()
    yield srv
    srv.stop()


def _wait_until(predicate, timeout=5.0):
    # The shared helper raises on timeout; keep the boolean wrapper so
    # the call sites read as assertions.
    wait_until(predicate, timeout=timeout)
    return True


class TestSessionLeases:
    def test_ghost_user_is_reaped_and_locks_released(self, leased_server):
        """A client that dies without wt.leave loses its seat — and its
        grab locks — once the lease lapses (the paper's FCFS locks must
        not be held by the dead)."""
        srv = leased_server
        c = WindtunnelClient(*srv.address)
        rid = c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
        c.send_input([2, 4, 2], [2, 4, 2], "fist")  # grab the rake center
        assert srv.env.locks.get(rid) == c.client_id
        c._rpc.stream.close()  # die without wt.leave: a ghost user
        assert _wait_until(lambda: c.client_id not in srv.env.users)
        assert rid not in srv.env.locks  # lock released by the reaper
        assert rid in srv.env.rakes  # but the rake itself survives
        assert srv.sessions.reaped_total == 1
        assert srv.reaped_rake_locks == 1

    def test_heartbeat_keeps_an_idle_session_alive(self, leased_server):
        srv = leased_server
        with WindtunnelClient(*srv.address) as c:
            for _ in range(4):
                time.sleep(0.25)  # past half the lease each time
                c.heartbeat()
            assert c.client_id in srv.env.users
            assert srv.sessions.reaped_total == 0

    def test_reaped_session_resumes_transparently(self, leased_server):
        """A reaped client's next call rejoins with its token and retries."""
        srv = leased_server
        c = WindtunnelClient(*srv.address)
        try:
            assert _wait_until(lambda: c.client_id not in srv.env.users)
            # The seat is gone; this call must resume it, same client_id.
            c.send_input([1, 1, 1], [1, 1, 1], "open")
            assert c.client_id in srv.env.users
            assert c.rejoins >= 1
            stats = c.server_stats()
            assert stats["reaped_sessions"] == 1
            assert stats["resumed_sessions"] >= 1
        finally:
            c.close()

    def test_rejoin_with_wrong_token_rejected(self, leased_server):
        srv = leased_server
        c = WindtunnelClient(*srv.address)
        try:
            with pytest.raises(DlibRemoteError) as exc_info:
                c._rpc.call_once("wt.rejoin", c.client_id, "forged-token")
            assert exc_info.value.remote_type == "PermissionError"
        finally:
            c.close()

    def test_clean_leave_forgets_the_lease(self, leased_server):
        srv = leased_server
        c = WindtunnelClient(*srv.address)
        cid = c.client_id
        c.close()
        assert srv.sessions.get(cid) is None
        # "Nothing left to reap" is a claim about the reaper *declining*
        # to act: wait until it has completed full sweeps past the lease
        # deadline (tests/__init__.py rule 2), then assert no reap.
        sweeps0 = srv.sessions.sweeps_total
        deadline = time.monotonic() + srv.sessions.lease_seconds
        wait_until(
            lambda: srv.sessions.sweeps_total > sweeps0
            and time.monotonic() > deadline
        )
        assert srv.sessions.reaped_total == 0  # nothing left to reap


class TestClientDegradation:
    def test_network_error_is_recorded_not_swallowed(self, server):
        """A dead transport surfaces on last_network_error."""
        c = WindtunnelClient(*server.address)
        c._rpc.stream.close()
        with pytest.raises((ConnectionError, OSError)):
            c.fetch_frame()
        assert c.last_network_error is not None
        assert c.network_failures >= 1

    def test_network_loop_survives_failure_and_keeps_last_frame(self, server):
        """Figure 9 degradation: the loop marks state stale and retries;
        the renderer keeps drawing the last good frame."""
        c = WindtunnelClient(*server.address, width=80, height=60)
        rid = c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=3)
        try:
            c.fetch_frame()
            good_state = c.latest_state
            assert good_state is not None
            c._rpc.stream.close()  # sever the link under the loop
            c.start_network_loop(interval=0.01)
            assert _wait_until(lambda: c.state_stale, timeout=3.0)
            assert c.last_network_error is not None
            # The loop thread is still alive, retrying — not returned.
            assert c._net_thread.is_alive()
            # And the render half still draws the stale frame.
            assert c.latest_state is good_state
            fb = c.render(HEAD)
            assert fb.nonblack_pixels() > 0
            c.stop_network_loop()
        finally:
            try:
                c.remove_rake(rid)
            except Exception:  # noqa: BLE001 - link is dead by design
                pass
            c.close()

    def test_reconnect_resumes_session_via_factory(self, server):
        """With a stream factory, a severed link heals transparently."""
        c = WindtunnelClient(
            *server.address,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0, seed=0),
            call_timeout=2.0,
        )
        try:
            c.fetch_frame()
            c._rpc.stream.close()
            state = c.fetch_frame()  # ConnectionError -> reconnect -> rejoin
            assert state is not None
            assert c.reconnects >= 1
            assert c.rejoins >= 1
            assert c.client_id in server.env.users
        finally:
            c.close()


class TestFaultToleranceEndToEnd:
    def test_faulty_client_reconnects_while_staller_is_reaped(self):
        """The acceptance scenario, all three regimes at once:

        * client A runs 50 full frame() cycles through a FaultyChannel
          (random drops + one forced mid-frame disconnect), recovering by
          reconnect + wt.rejoin, rakes intact afterward;
        * client B stays healthy and its wt.frame latency never spikes,
          even though
        * client C sends a partial header, stalls forever holding a rake
          lock, and gets reaped by the lease sweep.
        """
        srv = WindtunnelServer(
            make_dataset(),
            settings=ToolSettings(streamline_steps=10),
            lease_seconds=1.0,
            reap_interval=0.05,
        )
        srv.start()
        channels = []

        def faulty_factory():
            plan = (
                FaultPlan(seed=5, drop_rate=0.12, disconnect_after_sends=4)
                if not channels
                else FaultPlan(seed=100 + len(channels), drop_rate=0.12)
            )
            chan = FaultyChannel(connect_tcp(*srv.address), plan)
            channels.append(chan)
            return chan

        a = b = c_stall = None
        try:
            a = WindtunnelClient(
                stream=faulty_factory(),
                stream_factory=faulty_factory,
                retry=RetryPolicy(
                    max_attempts=6, base_delay=0.01, max_delay=0.1, jitter=0.0, seed=2
                ),
                call_timeout=0.25,
                width=80,
                height=60,
            )
            rake_a = a.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            b = WindtunnelClient(*srv.address, width=80, height=60)
            c_stall = WindtunnelClient(*srv.address)
            rake_c = c_stall.add_rake([6, 2, 2], [6, 6, 2], n_seeds=4)
            c_stall.send_input([6, 4, 2], [6, 4, 2], "fist")
            assert srv.env.locks.get(rake_c) == c_stall.client_id
            # C wedges: half a frame header, then silence forever.
            c_stall._rpc.stream.send_raw(b"\x2a\x00")

            b_latencies = []
            for i in range(50):
                a.frame(HEAD, [4, 4, 2])
                t0 = time.perf_counter()
                b.fetch_frame()
                b_latencies.append(time.perf_counter() - t0)

            # A survived the drops and the forced disconnect, 50/50 cycles.
            assert a.timer.frames.count == 50
            assert a.reconnects >= 1 and a.rejoins >= 1
            assert channels[0].stats.disconnects == 1
            assert sum(ch.stats.drops for ch in channels) > 0
            assert rake_a in srv.env.rakes  # A's rake intact
            assert a.client_id in srv.env.users
            # B never saw C's stall or A's faults.
            assert max(b_latencies) < 1.0
            # C was reaped: seat vacated, lock released, rake survives.
            assert _wait_until(lambda: c_stall.client_id not in srv.env.users)
            assert rake_c not in srv.env.locks
            assert rake_c in srv.env.rakes
            stats = b.server_stats()
            assert stats["reaped_sessions"] >= 1
            assert stats["released_rake_locks"] >= 1
            assert stats["disconnects"] >= 1
        finally:
            for cl in (a, b):
                if cl is not None:
                    cl.close()
            srv.stop()


class TestTimerBudgetAccounting:
    def test_slow_network_blows_the_budget_and_is_recorded(self, server):
        raw = connect_tcp(*server.address)
        # 20 kB/s: a ~2 kB frame payload costs ~0.1 s of modeled delay.
        chan = ThrottledChannel(raw, NetworkModel("awful", 20_000.0))
        with WindtunnelClient(stream=chan, width=80, height=60) as c:
            rid = c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=6)
            try:
                c.frame(HEAD, [4, 4, 2])
                assert c.timer.frames.max > 0.05
                assert "fetch" in c.timer.stages
            finally:
                c.remove_rake(rid)


def _unstarted_server(fake, **kw):
    """A windtunnel with an injectable clock, driven without sockets.

    The dlib loop never runs: tests call ``_rpc_*`` and ``_reap_tick``
    directly, so lease expiry is a pure function of the fake clock.
    """
    kw.setdefault("lease_seconds", 1.0)
    return WindtunnelServer(
        make_dataset(),
        settings=ToolSettings(streamline_steps=8),
        pipelined=False,
        time_fn=lambda: fake["t"],
        **kw,
    )


class TestReaperRace:
    """The reaper's sweep vs. threads mutating the environment (issue 6).

    The sweep runs on the dlib service thread, which serializes it
    against *procedures* — but not against the pipeline's producer or
    anything else driving the environment directly.  It must therefore
    hold ``env.lock`` across the lock-table scan and the user removal.
    """

    def test_sweep_holds_env_lock_across_removal(self):
        fake = {"t": 0.0}
        srv = _unstarted_server(fake)
        cid = srv._rpc_join(None, "ghost")["client_id"]
        held = []
        real_remove = srv.env.remove_user

        def spying_remove(client_id):
            held.append(srv.env.lock._is_owned())
            return real_remove(client_id)

        srv.env.remove_user = spying_remove
        fake["t"] = 5.0  # the lease lapses
        srv._reap_tick(None)
        assert held == [True], "reaper removed a user without env.lock"
        assert cid not in srv.env.users

    def test_sweep_races_concurrent_grab_release(self):
        """Ghost reaping while another thread churns the grab table.

        Unfixed, the sweep iterates ``env.locks`` unlocked and a
        concurrent grab/release blows it up with ``RuntimeError: dict
        changed size during iteration``.
        """
        from repro.tracers import Rake

        fake = {"t": 0.0}
        srv = _unstarted_server(fake)
        resident = srv._rpc_join(None, "resident")["client_id"]
        srv._rpc_add_rake(
            None, resident, Rake([2, 2, 2], [2, 6, 2], n_seeds=4).to_dict()
        )
        stop = threading.Event()
        errors = []

        def churn_grabs():
            while not stop.is_set():
                try:
                    srv.env.try_grab(resident, [2.0, 4.0, 2.0])
                    srv.env.release(resident)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)
                    return

        t = threading.Thread(target=churn_grabs, daemon=True)
        t.start()
        try:
            for n in range(30):
                srv._rpc_join(None, f"ghost{n}")
                fake["t"] += 2.0  # every ghost's lease lapses
                srv.sessions.touch(resident)  # ...but the resident's renews
                srv._reap_tick(None)
        finally:
            stop.set()
            t.join(timeout=10)
        assert errors == []
        assert resident in srv.env.users
        assert srv.sessions.reaped_total == 30


class TestSubscriberChurn:
    """Per-client delivery state must die with the client (issue 6)."""

    def test_hundred_client_churn_leaves_nothing_behind(self):
        fake = {"t": 0.0}
        srv = _unstarted_server(fake, lease_retain_seconds=2.0)
        for round_no in range(3):
            cids = [
                srv._rpc_join(None, f"churn{round_no}-{i}")["client_id"]
                for i in range(100)
            ]
            for cid in cids:
                srv._rpc_subscribe(
                    None, cid, {"adaptive": True, "encoding": "f16"}
                )
            assert len(srv._subs) == 100
            gauges = srv.registry.snapshot()["gauges"]
            assert any(k.startswith("net.degradation.") for k in gauges)
            # Half leave politely; half just vanish mid-session.
            for cid in cids[:50]:
                srv._rpc_leave(None, cid)
            fake["t"] += 1.5  # ghosts' leases lapse
            srv._reap_tick(None)
            fake["t"] += 4.0  # reaped leases age past retention
            srv._reap_tick(None)
            assert srv._subs == {}
            assert srv.env.users == {}
        assert srv.sessions.active == 0
        assert srv.sessions.reaped_total == 150
        assert srv.sessions.evicted_total == 150
        snapshot = srv.registry.snapshot()
        leaked = [
            key
            for section in snapshot.values()
            if isinstance(section, dict)
            for key in section
            if str(key).startswith("net.degradation.")
        ]
        assert leaked == []

    def test_resubscribe_replaces_instruments_not_accretes(self):
        fake = {"t": 0.0}
        srv = _unstarted_server(fake)
        cid = srv._rpc_join(None, "flapper")["client_id"]
        for _ in range(5):
            srv._rpc_subscribe(None, cid, {"adaptive": True})
            srv._rpc_subscribe(None, cid, {"enabled": False})
        gauges = srv.registry.snapshot()["gauges"]
        assert not any(k.startswith("net.degradation.") for k in gauges)
        assert srv._subs == {}
