"""Robustness and integration edge cases for the core system."""

import numpy as np
import pytest

from repro.core import ToolSettings, WindtunnelClient, WindtunnelServer
from repro.dlib import DlibRemoteError
from repro.dlib.transport import connect_tcp
from repro.flow import MemoryDataset, RigidRotation, sample_on_grid
from repro.grid import cartesian_grid
from repro.netsim import NetworkModel, ThrottledChannel
from repro.util import look_at

HEAD = look_at([4.0, -6.0, 2.0], [4.0, 4.0, 2.0], up=[0, 0, 1])


def make_dataset(n_times=4):
    grid = cartesian_grid((9, 9, 5), lo=(0, 0, 0), hi=(8, 8, 4))
    vel = sample_on_grid(
        RigidRotation(omega=[0, 0, 0.5], center=[4, 4, 0]), grid,
        np.arange(n_times) * 0.2, dtype=np.float64,
    )
    return MemoryDataset(grid, vel, dt=0.2)


@pytest.fixture(scope="module")
def server():
    srv = WindtunnelServer(
        make_dataset(), settings=ToolSettings(streamline_steps=15),
        time_fn=lambda: 0.0,
    )
    srv.start()
    yield srv
    srv.stop()


class TestInvalidRequests:
    def test_update_unknown_client(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c._rpc.call("wt.update", 9999, [0, 0, 0], [0, 0, 0], "open")

    def test_add_rake_unknown_client(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c._rpc.call("wt.add_rake", 9999, {
                    "end_a": [0, 0, 0], "end_b": [1, 0, 0],
                    "n_seeds": 3, "kind": "streamline", "rake_id": None,
                })

    def test_bad_rake_kind_rejected_client_side(self, server):
        """Rake validation fires locally, before any bytes hit the wire."""
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(ValueError):
                c.add_rake([0, 0, 0], [1, 0, 0], kind="isosurface")

    def test_remove_unknown_rake(self, server):
        with WindtunnelClient(*server.address) as c:
            with pytest.raises(DlibRemoteError):
                c.remove_rake(424242)

    def test_leave_twice(self, server):
        c = WindtunnelClient(*server.address)
        c.close()
        # Second leave (of a departed id) fails remotely but must not
        # wedge the server.
        with WindtunnelClient(*server.address) as c2:
            with pytest.raises(DlibRemoteError):
                c2._rpc.call("wt.leave", c.client_id)
            assert c2.fetch_frame() is not None


class TestRakeOutsideDomain:
    def test_fully_outside_rake_yields_empty_paths(self, server):
        with WindtunnelClient(*server.address) as c:
            rid = c.add_rake([50, 50, 50], [60, 60, 60], n_seeds=4)
            try:
                state = c.fetch_frame()
                path = state["paths"][str(rid)]
                assert path["vertices"].shape[0] == 0
                # And it still renders without error (empty bundle).
                fb = c.render(HEAD)
                assert fb is not None
            finally:
                c.remove_rake(rid)

    def test_partially_outside_rake_keeps_inside_seeds(self, server):
        with WindtunnelClient(*server.address) as c:
            rid = c.add_rake([4.0, 4.0, 2.0], [4.0, 40.0, 2.0], n_seeds=8)
            try:
                state = c.fetch_frame()
                s = state["paths"][str(rid)]["vertices"].shape[0]
                assert 0 < s < 8
            finally:
                c.remove_rake(rid)


class TestThrottledEndToEnd:
    def test_client_over_slow_network_still_correct(self, server):
        """The full windtunnel runs over a bandwidth-limited channel."""
        raw = connect_tcp(*server.address)
        chan = ThrottledChannel(raw, NetworkModel("slowish", 2.0 * 2**20))
        with WindtunnelClient(stream=chan, width=120, height=90) as c:
            rid = c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            try:
                fb = c.frame(HEAD, [4, 4, 2])
                assert fb.nonblack_pixels() > 0
                assert chan.modeled_delay_total > 0
            finally:
                c.remove_rake(rid)


class TestManyClients:
    def test_six_clients_share_one_compute(self, server):
        clients = [WindtunnelClient(*server.address) for _ in range(6)]
        try:
            rid = clients[0].add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
            computed_before = server.frames_computed
            states = [c.fetch_frame() for c in clients]
            assert server.frames_computed == computed_before + 1
            ref = list(states[0]["paths"].values())[0]["vertices"]
            for s in states[1:]:
                np.testing.assert_array_equal(
                    list(s["paths"].values())[0]["vertices"], ref
                )
            clients[0].remove_rake(rid)
        finally:
            for c in clients:
                c.close()

    def test_user_count_tracks_sessions(self, server):
        before = len(server.env.users)
        a = WindtunnelClient(*server.address)
        b = WindtunnelClient(*server.address)
        assert len(server.env.users) == before + 2
        a.close()
        b.close()
        assert len(server.env.users) == before


class TestTimerBudgetAccounting:
    def test_slow_network_blows_the_budget_and_is_recorded(self, server):
        raw = connect_tcp(*server.address)
        # 20 kB/s: a ~2 kB frame payload costs ~0.1 s of modeled delay.
        chan = ThrottledChannel(raw, NetworkModel("awful", 20_000.0))
        with WindtunnelClient(stream=chan, width=80, height=60) as c:
            rid = c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=6)
            try:
                c.frame(HEAD, [4, 4, 2])
                assert c.timer.frames.max > 0.05
                assert "fetch" in c.timer.stages
            finally:
                c.remove_rake(rid)
