"""Tests for derived scalar fields (gradients, vorticity, Q)."""

import numpy as np
import pytest

from repro.flow import (
    MemoryDataset,
    RigidRotation,
    UniformFlow,
    sample_on_grid,
)
from repro.flow.scalars import (
    q_criterion,
    speed,
    velocity_gradient,
    vorticity,
    vorticity_magnitude,
)
from repro.grid import CurvilinearGrid, cartesian_grid


def make_dataset(field, grid=None):
    if grid is None:
        grid = cartesian_grid((9, 9, 7), lo=(-2, -2, -1), hi=(2, 2, 1))
    vel = sample_on_grid(field, grid, [0.0], dtype=np.float64)
    return MemoryDataset(grid, vel)


class TestSpeed:
    def test_uniform(self):
        ds = make_dataset(UniformFlow([3.0, 0.0, 4.0]))
        np.testing.assert_allclose(speed(ds, 0), 5.0, atol=1e-12)


class TestVelocityGradient:
    def test_rigid_rotation_gradient(self):
        """v = omega x r has the exact constant gradient [[0,-w,0],[w,0,0],0]."""
        ds = make_dataset(RigidRotation(omega=[0, 0, 2.0]))
        g = velocity_gradient(ds, 0)
        expected = np.array([[0, -2, 0], [2, 0, 0], [0, 0, 0]], dtype=float)
        np.testing.assert_allclose(g, np.broadcast_to(expected, g.shape), atol=1e-9)

    def test_chain_rule_on_stretched_grid(self):
        """The Jacobian chain rule yields physical derivatives regardless
        of grid spacing."""
        grid = cartesian_grid((9, 9, 7), lo=(0, 0, 0), hi=(16, 4, 2))
        ds = make_dataset(RigidRotation(omega=[0, 0, 1.0]), grid=grid)
        g = velocity_gradient(ds, 0)
        expected = np.array([[0, -1, 0], [1, 0, 0], [0, 0, 0]], dtype=float)
        np.testing.assert_allclose(g, np.broadcast_to(expected, g.shape), atol=1e-9)

    def test_warped_grid(self):
        """Still exact for an affine field on a smoothly warped grid."""
        base = cartesian_grid((9, 9, 7), lo=(-2, -2, -1), hi=(2, 2, 1)).xyz.copy()
        base[..., 0] += 0.15 * np.sin(base[..., 1])
        grid = CurvilinearGrid(base)
        ds = make_dataset(RigidRotation(omega=[0, 0, 1.0]), grid=grid)
        g = velocity_gradient(ds, 0)
        expected = np.array([[0, -1, 0], [1, 0, 0], [0, 0, 0]], dtype=float)
        # Interior nodes: boundary one-sided differences are less exact on
        # the warped grid.
        np.testing.assert_allclose(
            g[1:-1, 1:-1, 1:-1],
            np.broadcast_to(expected, g[1:-1, 1:-1, 1:-1].shape),
            atol=5e-3,
        )


class TestVorticity:
    def test_rigid_rotation_vorticity_is_2omega(self):
        ds = make_dataset(RigidRotation(omega=[0, 0, 1.5]))
        w = vorticity(ds, 0)
        np.testing.assert_allclose(
            w, np.broadcast_to([0.0, 0.0, 3.0], w.shape), atol=1e-9
        )
        np.testing.assert_allclose(vorticity_magnitude(ds, 0), 3.0, atol=1e-9)

    def test_uniform_flow_irrotational(self):
        ds = make_dataset(UniformFlow([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(vorticity(ds, 0), 0.0, atol=1e-12)


class TestQCriterion:
    def test_rotation_positive(self):
        """Solid-body rotation is all rotation: Q = omega^2 > 0."""
        ds = make_dataset(RigidRotation(omega=[0, 0, 1.0]))
        q = q_criterion(ds, 0)
        np.testing.assert_allclose(q, 1.0, atol=1e-9)

    def test_pure_strain_negative(self):
        """A pure straining field has Q < 0 everywhere."""

        from repro.flow.fields import VectorField

        class Strain(VectorField):
            def sample(self, points, t):
                out = np.zeros_like(points)
                out[:, 0] = points[:, 0]
                out[:, 1] = -points[:, 1]
                return out

        ds = make_dataset(Strain())
        q = q_criterion(ds, 0)
        assert np.all(q < 0)
        np.testing.assert_allclose(q, -1.0, atol=1e-9)

    def test_q_marks_tapered_cylinder_vortices(self):
        """Q > 0 regions appear in the wake of the synthetic dataset."""
        from repro.flow import tapered_cylinder_dataset

        ds = tapered_cylinder_dataset(shape=(24, 24, 8), n_timesteps=2, dt=0.5)
        q = q_criterion(ds, 1)
        assert q.max() > 0  # vortex cores exist
        assert q.min() < 0  # strain regions too

    def test_jacobian_reuse(self):
        from repro.grid.jacobian import grid_jacobian

        ds = make_dataset(RigidRotation())
        jac = grid_jacobian(ds.grid.xyz)
        a = q_criterion(ds, 0)
        b = q_criterion(ds, 0, jac=jac)
        np.testing.assert_allclose(a, b)
