"""Integration tests for the dlib client/server over real sockets."""

import threading
import time

import numpy as np
import pytest

from repro.dlib import DlibClient, DlibRemoteError, DlibServer


@pytest.fixture()
def server():
    srv = DlibServer()

    @srv.procedure
    def echo(ctx, value):
        return value

    @srv.procedure
    def add(ctx, a, b=0):
        return a + b

    @srv.procedure
    def remember(ctx, key, value):
        ctx.state[key] = value
        return sorted(ctx.state)

    @srv.procedure
    def recall(ctx, key):
        return ctx.state[key]

    @srv.procedure
    def counter(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        return ctx.state["n"]

    @srv.procedure
    def boom(ctx):
        raise RuntimeError("remote failure")

    @srv.procedure
    def scale_array(ctx, arr, factor):
        return np.asarray(arr) * factor

    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    with DlibClient(*server.address) as c:
        yield c


class TestBasicCalls:
    def test_echo(self, client):
        assert client.call("echo", "hello") == "hello"

    def test_kwargs(self, client):
        assert client.call("add", 2, b=3) == 5

    def test_array_payload(self, client):
        arr = np.arange(12, dtype=np.float32).reshape(4, 3)
        out = client.call("scale_array", arr, 2.0)
        np.testing.assert_allclose(out, arr * 2)

    def test_ping(self, client):
        assert client.ping({"x": 1}) == {"x": 1}

    def test_stub_calls(self, client):
        assert client.stub.add(1, 2) == 3
        assert client.stub.dlib.ping("ok") == "ok"

    def test_stub_root_not_callable(self, client):
        with pytest.raises(TypeError):
            client.stub()

    def test_unknown_procedure(self, client):
        with pytest.raises(DlibRemoteError) as exc_info:
            client.call("nonexistent")
        assert exc_info.value.remote_type == "LookupError"

    def test_remote_exception(self, client):
        with pytest.raises(DlibRemoteError) as exc_info:
            client.call("boom")
        assert exc_info.value.remote_type == "RuntimeError"
        assert "remote failure" in str(exc_info.value)
        assert "boom" in exc_info.value.remote_traceback

    def test_builtin_procedures_listed(self, client):
        procs = client.call("dlib.procedures")
        assert "dlib.ping" in procs and "echo" in procs


class TestPersistentContext:
    def test_state_persists_across_calls(self, client):
        client.call("remember", "grid", [1, 2, 3])
        assert client.call("recall", "grid") == [1, 2, 3]

    def test_state_shared_across_clients(self, server, client):
        """Section 4: multiple clients share one server process environment."""
        client.call("remember", "shared", 42)
        with DlibClient(*server.address) as second:
            assert second.call("recall", "shared") == 42

    def test_stats(self, client):
        client.ping()
        stats = client.call("dlib.stats")
        assert stats["calls_served"] >= 1
        assert stats["clients_connected"] >= 1


class TestRemoteMemory:
    def test_alloc_write_read_free(self, client):
        handle = client.alloc(64)
        client.write_segment(handle, b"abcdef", offset=3)
        assert client.read_segment(handle, offset=3, nbytes=6) == b"abcdef"
        client.free(handle)
        with pytest.raises(DlibRemoteError):
            client.read_segment(handle)

    def test_put_array(self, client):
        arr = np.arange(100, dtype=np.float32)
        handle = client.put_array(arr)
        raw = client.read_segment(handle)
        np.testing.assert_array_equal(np.frombuffer(raw, dtype=np.float32), arr)

    def test_overrun_rejected(self, client):
        handle = client.alloc(8)
        with pytest.raises(DlibRemoteError):
            client.write_segment(handle, b"123456789", offset=4)

    def test_budget_enforced(self):
        srv = DlibServer(memory_budget=100)
        srv.start()
        try:
            with DlibClient(*srv.address) as c:
                c.alloc(60)
                with pytest.raises(DlibRemoteError) as exc_info:
                    c.alloc(60)
                assert exc_info.value.remote_type == "MemoryError"
        finally:
            srv.stop()


class TestMultiClientSerial:
    def test_serial_counter_no_lost_updates(self, server):
        """Concurrent clients increment a shared counter; serial execution
        means every increment lands (no read-modify-write races)."""
        n_clients, n_calls = 4, 25
        results = [[] for _ in range(n_clients)]

        def worker(i):
            with DlibClient(*server.address) as c:
                for _ in range(n_calls):
                    results[i].append(c.call("counter"))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seen = sorted(x for r in results for x in r)
        assert seen == list(range(1, n_clients * n_calls + 1))

    def test_each_client_sees_monotonic_results(self, server):
        with DlibClient(*server.address) as a, DlibClient(*server.address) as b:
            va1 = a.call("counter")
            vb1 = b.call("counter")
            va2 = a.call("counter")
            assert va1 < vb1 < va2


class TestLifecycle:
    def test_context_manager(self):
        with DlibServer() as srv:
            with DlibClient(*srv.address) as c:
                assert c.ping(1) == 1

    def test_address_before_start(self):
        with pytest.raises(RuntimeError):
            DlibServer().address

    def test_double_start_rejected(self, server):
        with pytest.raises(RuntimeError):
            server.start()

    def test_register_validation(self, server):
        with pytest.raises(ValueError):
            server.register("", lambda ctx: None)
        with pytest.raises(ValueError):
            server.register("_private", lambda ctx: None)

    def test_client_requires_address_or_stream(self):
        with pytest.raises(ValueError):
            DlibClient()

    def test_server_survives_client_disconnect(self, server):
        c1 = DlibClient(*server.address)
        c1.ping()
        c1.close()
        time.sleep(0.1)
        with DlibClient(*server.address) as c2:
            assert c2.ping("still alive") == "still alive"

    def test_large_transfer(self, client):
        """A full 100k-particle frame (1.2 MB, Table 1 row 3) round-trips."""
        arr = np.random.default_rng(0).normal(size=(100000, 3)).astype(np.float32)
        out = client.call("echo", arr)
        np.testing.assert_array_equal(out, arr)
        assert arr.nbytes == 1200000


class TestEventLoop:
    """The selector loop's new machinery: continuations, push delivery,
    write-queue backpressure, and shutdown hygiene."""

    def test_deferred_resolve_from_another_thread(self):
        srv = DlibServer()
        parked = []

        @srv.procedure
        def wait_for_it(ctx):
            d = srv.defer()
            parked.append(d)
            return d

        srv.start()
        try:
            with DlibClient(*srv.address) as c:
                got = []
                t = threading.Thread(target=lambda: got.append(c.call("wait_for_it")))
                t.start()
                deadline = time.monotonic() + 5.0
                while not parked and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert parked, "call never parked"
                assert srv.parked_count == 1
                assert parked[0].resolve({"answer": 42})
                t.join(timeout=5.0)
                assert not t.is_alive()
                assert got == [{"answer": 42}]
                assert srv.parked_count == 0
        finally:
            srv.stop()

    def test_deferred_fail_surfaces_as_remote_error(self):
        srv = DlibServer()
        parked = []

        @srv.procedure
        def doomed(ctx):
            d = srv.defer()
            parked.append(d)
            return d

        srv.start()
        try:
            with DlibClient(*srv.address) as c:
                errs = []

                def call():
                    try:
                        c.call("doomed")
                    except DlibRemoteError as exc:
                        errs.append(exc)

                t = threading.Thread(target=call)
                t.start()
                deadline = time.monotonic() + 5.0
                while not parked and time.monotonic() < deadline:
                    time.sleep(0.01)
                parked[0].fail(ValueError("no frame for you"))
                t.join(timeout=5.0)
                assert errs and errs[0].remote_type == "ValueError"
        finally:
            srv.stop()

    def test_deferred_resolve_is_idempotent(self):
        srv = DlibServer()
        parked = []

        @srv.procedure
        def once(ctx):
            d = srv.defer()
            parked.append(d)
            return d

        srv.start()
        try:
            with DlibClient(*srv.address) as c:
                got = []
                t = threading.Thread(target=lambda: got.append(c.call("once")))
                t.start()
                deadline = time.monotonic() + 5.0
                while not parked and time.monotonic() < deadline:
                    time.sleep(0.01)
                d = parked[0]
                assert d.resolve("first")
                assert not d.resolve("second")  # lost the race: no-op
                assert not d.fail(RuntimeError("too late"))
                t.join(timeout=5.0)
                assert got == ["first"]
        finally:
            srv.stop()

    def test_defer_outside_dispatch_rejected(self):
        srv = DlibServer()
        with pytest.raises(RuntimeError):
            srv.defer()

    def test_shutdown_drains_parked_calls_with_typed_error(self):
        from repro.dlib import ServerShutdownError  # noqa: F401 - the contract

        srv = DlibServer()
        parked = []

        @srv.procedure
        def park(ctx):
            d = srv.defer()
            parked.append(d)
            return d

        srv.start()
        c = DlibClient(*srv.address)
        outcome = []

        def call():
            try:
                outcome.append(c.call("park"))
            except Exception as exc:  # noqa: BLE001
                outcome.append(exc)

        t = threading.Thread(target=call)
        t.start()
        deadline = time.monotonic() + 5.0
        while not parked and time.monotonic() < deadline:
            time.sleep(0.01)
        srv.stop()  # drains the parked call with ServerShutdownError
        t.join(timeout=5.0)
        c.close()
        assert outcome
        # The drain reply usually lands; a racing close may surface as a
        # transport error instead — both are clean, a hang is the bug.
        if isinstance(outcome[0], DlibRemoteError):
            assert outcome[0].remote_type == "ServerShutdownError"
        else:
            assert isinstance(outcome[0], (ConnectionError, OSError))

    def test_push_reaches_subscribed_client(self):
        srv = DlibServer()
        conns = []

        @srv.procedure
        def subscribe_me(ctx):
            conns.append(srv.current_connection())
            return "subscribed"

        srv.start()
        try:
            got = []
            with DlibClient(*srv.address, on_push=got.append) as c:
                assert c.call("subscribe_me") == "subscribed"
                ok = []
                srv.call_soon(lambda: ok.append(srv.push(conns[0], {"seq": 1})))
                deadline = time.monotonic() + 5.0
                while (not got or not ok) and time.monotonic() < deadline:
                    c.poll_push(timeout=0.05)
                assert got == [{"seq": 1}]
                assert ok == [True]
                assert c.pushes_received == 1
        finally:
            srv.stop()

    def test_push_interleaved_with_call_does_not_corrupt_reply(self):
        """A PUSH landing between CALL and RESULT is delivered via
        on_push while the call returns its own reply untouched."""
        srv = DlibServer()
        conns = []

        @srv.procedure
        def subscribe_me(ctx):
            conns.append(srv.current_connection())
            return "ok"

        @srv.procedure
        def pushy_echo(ctx, v):
            # Queue a push ahead of this call's own reply.
            srv.push(conns[0], {"interleaved": True})
            return v

        srv.start()
        try:
            got = []
            with DlibClient(*srv.address, on_push=got.append) as c:
                c.call("subscribe_me")
                assert c.call("pushy_echo", "payload") == "payload"
                assert got == [{"interleaved": True}]
        finally:
            srv.stop()

    def test_slow_push_subscriber_sheds_frames_not_the_loop(self):
        """Above the high-water mark pushes are shed and counted; the
        connection (and the loop) live on."""
        srv = DlibServer(send_high_water=2048)
        conns = []

        @srv.procedure
        def subscribe_me(ctx):
            conns.append(srv.current_connection())
            return "ok"

        srv.start()
        try:
            import socket as socket_mod

            sock = socket_mod.create_connection(srv.address)
            from repro.dlib.protocol import MessageKind, encode_message
            from repro.dlib.transport import Stream

            s = Stream(sock)
            s.send(encode_message(MessageKind.CALL, 1, {"proc": "subscribe_me"}))
            s.recv()  # the reply; after this the peer stops reading
            results = []
            done = threading.Event()
            # Big enough that the kernel's socket buffers fill after a few
            # pushes; from then on bytes pile up in the user-space sendq
            # and cross the (tiny) high-water mark.
            blob = b"x" * (256 * 1024)

            def hammer():
                ok = 0
                for _ in range(64):
                    if srv.push(conns[0], blob):
                        ok += 1
                results.append(ok)
                done.set()

            srv.call_soon(hammer)
            assert done.wait(timeout=5.0)
            # Some pushes queued until the mark, the rest were shed.
            assert 0 < results[0] < 64
            assert conns[0].frames_shed > 0
            assert srv.registry.snapshot()["counters"]["net.frames_shed"] > 0
            assert srv.is_connected(conns[0])  # shed, not dropped
            s.close()
        finally:
            srv.stop()

    def test_stop_timeout_warns_and_counts(self):
        srv = DlibServer()
        release = threading.Event()

        @srv.procedure
        def wedge(ctx):
            release.wait(timeout=10.0)  # blocks the service thread
            return "finally"

        srv.start()
        c = DlibClient(*srv.address)
        t = threading.Thread(target=lambda: _swallow(lambda: c.call("wedge")))
        t.start()
        time.sleep(0.2)  # let the wedge land on the loop
        with pytest.warns(RuntimeWarning, match="did not stop"):
            srv.stop(timeout=0.1)
        assert srv.registry.snapshot()["counters"]["server.stop_timeouts"] == 1
        release.set()
        t.join(timeout=10.0)
        c.close()

    def test_loop_metrics_exported(self, server, client):
        client.ping()
        server.call_soon(lambda: None)
        time.sleep(0.2)
        snap = server.registry.snapshot()
        assert snap["histograms"]["server.loop_lag_seconds"]["count"] >= 1
        assert "net.sendq_bytes" in snap["gauges"]
        stats = client.call("dlib.stats")
        assert stats["parked_calls"] == 0
        assert stats["sendq_bytes"] == 0


def _swallow(fn):
    try:
        fn()
    except Exception:  # noqa: BLE001 - teardown race; the test asserts elsewhere
        pass


class _GatherSock:
    """Capture-only socket: records gather shapes, optionally caps each
    syscall's byte count to force short writes."""

    def __init__(self, cap=None):
        self.wire = bytearray()
        self.cap = cap
        self.sendmsg_calls = []
        self.send_calls = 0

    def sendmsg(self, bufs):
        self.sendmsg_calls.append(len(bufs))
        data = b"".join(bytes(b) for b in bufs)
        n = len(data) if self.cap is None else min(self.cap, len(data))
        self.wire += data[:n]
        return n

    def send(self, data):
        self.send_calls += 1
        data = bytes(data)
        n = len(data) if self.cap is None else min(self.cap, len(data))
        self.wire += data[:n]
        return n


def _framed(*payloads):
    import struct

    out = b""
    for p in payloads:
        out += struct.pack("<I", len(p)) + p
    return out


class TestScatterGatherWrites:
    """The zero-copy sendmsg write path (and its fallback) in isolation."""

    def test_queue_never_copies_the_payload(self):
        from repro.dlib.server import _Connection

        conn = _Connection(_GatherSock())
        payload = b"x" * 64
        assert conn.queue(payload) == 4 + 64
        # Header and payload are separate buffers; the payload view
        # wraps the original bytes object — no concatenation copy.
        assert len(conn.sendq) == 2
        assert conn.sendq[-1].obj is payload
        assert conn.sendq_bytes == 68

    def test_flush_gathers_whole_queue_in_one_syscall(self):
        from repro.dlib.server import _Connection

        sock = _GatherSock()
        conn = _Connection(sock)
        msgs = [b"alpha", b"bravo!", b"c" * 40]
        for m in msgs:
            conn.queue(m)
        assert conn.flush()
        assert sock.sendmsg_calls == [6]  # 3 frames x (header, payload)
        assert bytes(sock.wire) == _framed(*msgs)
        assert conn.sendmsg_batches == 1
        assert conn.sendq_bytes == 0 and not conn.sendq

    def test_gather_is_capped_per_syscall(self):
        from repro.dlib.server import _SENDMSG_BATCH, _Connection

        sock = _GatherSock()
        conn = _Connection(sock)
        msgs = [bytes([i]) * 3 for i in range(20)]
        for m in msgs:
            conn.queue(m)
        assert conn.flush()
        assert sock.sendmsg_calls == [_SENDMSG_BATCH, _SENDMSG_BATCH, 8]
        assert bytes(sock.wire) == _framed(*msgs)

    def test_short_gather_slices_the_straddled_buffer(self):
        from repro.dlib.server import _Connection

        # A 7-byte window never aligns with the 4-byte headers, so every
        # syscall ends inside some buffer: pop/slice accounting must
        # reassemble the exact byte stream.
        sock = _GatherSock(cap=7)
        conn = _Connection(sock)
        msgs = [b"abcdefgh", b"ij", b"k" * 23]
        for m in msgs:
            conn.queue(m)
        assert conn.flush()
        assert bytes(sock.wire) == _framed(*msgs)
        assert conn.bytes_sent == len(sock.wire)

    def test_fallback_wire_bytes_are_identical(self, monkeypatch):
        from repro.dlib.server import _Connection

        msgs = (b"one", b"two2", b"")
        fast, slow = _GatherSock(), _GatherSock(cap=5)
        conn_fast = _Connection(fast)
        for m in msgs:
            conn_fast.queue(m)
        monkeypatch.setattr(_Connection, "use_sendmsg", False)
        conn_slow = _Connection(slow)
        for m in msgs:
            conn_slow.queue(m)
        assert conn_fast.flush() and conn_slow.flush()
        assert bytes(fast.wire) == bytes(slow.wire) == _framed(*msgs)
        assert slow.sendmsg_calls == []  # gated off: classic send() only
        assert conn_slow.sendmsg_batches == 0

    def test_zero_byte_gather_reports_blocked(self):
        from repro.dlib.server import _Connection

        class _FullSock(_GatherSock):
            def sendmsg(self, bufs):
                return 0

        conn = _Connection(_FullSock())
        conn.queue(b"stuck")
        assert not conn.flush()
        assert conn.sendq_bytes == 9  # nothing lost; retried on next write

    def test_live_server_counts_batches(self):
        from repro.dlib.server import _Connection

        srv = DlibServer()

        @srv.procedure
        def echo2(ctx, v):
            return v

        srv.start()
        try:
            with DlibClient(*srv.address) as c:
                for i in range(5):
                    assert c.call("echo2", i) == i
            # The reply bytes reach the client just before the loop's
            # finally-block bumps the registry — poll the last inc in.
            def batches():
                return srv.registry.snapshot()["counters"].get(
                    "net.sendmsg_batches", 0
                )

            deadline = time.monotonic() + 5.0
            while batches() < 5 and time.monotonic() < deadline:
                time.sleep(0.01)
            if _Connection.use_sendmsg:
                assert batches() >= 5
            else:  # pragma: no cover - non-sendmsg platform
                assert batches() == 0
        finally:
            srv.stop()
