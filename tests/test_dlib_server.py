"""Integration tests for the dlib client/server over real sockets."""

import threading
import time

import numpy as np
import pytest

from repro.dlib import DlibClient, DlibRemoteError, DlibServer


@pytest.fixture()
def server():
    srv = DlibServer()

    @srv.procedure
    def echo(ctx, value):
        return value

    @srv.procedure
    def add(ctx, a, b=0):
        return a + b

    @srv.procedure
    def remember(ctx, key, value):
        ctx.state[key] = value
        return sorted(ctx.state)

    @srv.procedure
    def recall(ctx, key):
        return ctx.state[key]

    @srv.procedure
    def counter(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        return ctx.state["n"]

    @srv.procedure
    def boom(ctx):
        raise RuntimeError("remote failure")

    @srv.procedure
    def scale_array(ctx, arr, factor):
        return np.asarray(arr) * factor

    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    with DlibClient(*server.address) as c:
        yield c


class TestBasicCalls:
    def test_echo(self, client):
        assert client.call("echo", "hello") == "hello"

    def test_kwargs(self, client):
        assert client.call("add", 2, b=3) == 5

    def test_array_payload(self, client):
        arr = np.arange(12, dtype=np.float32).reshape(4, 3)
        out = client.call("scale_array", arr, 2.0)
        np.testing.assert_allclose(out, arr * 2)

    def test_ping(self, client):
        assert client.ping({"x": 1}) == {"x": 1}

    def test_stub_calls(self, client):
        assert client.stub.add(1, 2) == 3
        assert client.stub.dlib.ping("ok") == "ok"

    def test_stub_root_not_callable(self, client):
        with pytest.raises(TypeError):
            client.stub()

    def test_unknown_procedure(self, client):
        with pytest.raises(DlibRemoteError) as exc_info:
            client.call("nonexistent")
        assert exc_info.value.remote_type == "LookupError"

    def test_remote_exception(self, client):
        with pytest.raises(DlibRemoteError) as exc_info:
            client.call("boom")
        assert exc_info.value.remote_type == "RuntimeError"
        assert "remote failure" in str(exc_info.value)
        assert "boom" in exc_info.value.remote_traceback

    def test_builtin_procedures_listed(self, client):
        procs = client.call("dlib.procedures")
        assert "dlib.ping" in procs and "echo" in procs


class TestPersistentContext:
    def test_state_persists_across_calls(self, client):
        client.call("remember", "grid", [1, 2, 3])
        assert client.call("recall", "grid") == [1, 2, 3]

    def test_state_shared_across_clients(self, server, client):
        """Section 4: multiple clients share one server process environment."""
        client.call("remember", "shared", 42)
        with DlibClient(*server.address) as second:
            assert second.call("recall", "shared") == 42

    def test_stats(self, client):
        client.ping()
        stats = client.call("dlib.stats")
        assert stats["calls_served"] >= 1
        assert stats["clients_connected"] >= 1


class TestRemoteMemory:
    def test_alloc_write_read_free(self, client):
        handle = client.alloc(64)
        client.write_segment(handle, b"abcdef", offset=3)
        assert client.read_segment(handle, offset=3, nbytes=6) == b"abcdef"
        client.free(handle)
        with pytest.raises(DlibRemoteError):
            client.read_segment(handle)

    def test_put_array(self, client):
        arr = np.arange(100, dtype=np.float32)
        handle = client.put_array(arr)
        raw = client.read_segment(handle)
        np.testing.assert_array_equal(np.frombuffer(raw, dtype=np.float32), arr)

    def test_overrun_rejected(self, client):
        handle = client.alloc(8)
        with pytest.raises(DlibRemoteError):
            client.write_segment(handle, b"123456789", offset=4)

    def test_budget_enforced(self):
        srv = DlibServer(memory_budget=100)
        srv.start()
        try:
            with DlibClient(*srv.address) as c:
                c.alloc(60)
                with pytest.raises(DlibRemoteError) as exc_info:
                    c.alloc(60)
                assert exc_info.value.remote_type == "MemoryError"
        finally:
            srv.stop()


class TestMultiClientSerial:
    def test_serial_counter_no_lost_updates(self, server):
        """Concurrent clients increment a shared counter; serial execution
        means every increment lands (no read-modify-write races)."""
        n_clients, n_calls = 4, 25
        results = [[] for _ in range(n_clients)]

        def worker(i):
            with DlibClient(*server.address) as c:
                for _ in range(n_calls):
                    results[i].append(c.call("counter"))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seen = sorted(x for r in results for x in r)
        assert seen == list(range(1, n_clients * n_calls + 1))

    def test_each_client_sees_monotonic_results(self, server):
        with DlibClient(*server.address) as a, DlibClient(*server.address) as b:
            va1 = a.call("counter")
            vb1 = b.call("counter")
            va2 = a.call("counter")
            assert va1 < vb1 < va2


class TestLifecycle:
    def test_context_manager(self):
        with DlibServer() as srv:
            with DlibClient(*srv.address) as c:
                assert c.ping(1) == 1

    def test_address_before_start(self):
        with pytest.raises(RuntimeError):
            DlibServer().address

    def test_double_start_rejected(self, server):
        with pytest.raises(RuntimeError):
            server.start()

    def test_register_validation(self, server):
        with pytest.raises(ValueError):
            server.register("", lambda ctx: None)
        with pytest.raises(ValueError):
            server.register("_private", lambda ctx: None)

    def test_client_requires_address_or_stream(self):
        with pytest.raises(ValueError):
            DlibClient()

    def test_server_survives_client_disconnect(self, server):
        c1 = DlibClient(*server.address)
        c1.ping()
        c1.close()
        time.sleep(0.1)
        with DlibClient(*server.address) as c2:
            assert c2.ping("still alive") == "still alive"

    def test_large_transfer(self, client):
        """A full 100k-particle frame (1.2 MB, Table 1 row 3) round-trips."""
        arr = np.random.default_rng(0).normal(size=(100000, 3)).astype(np.float32)
        out = client.call("echo", arr)
        np.testing.assert_array_equal(out, arr)
        assert arr.nbytes == 1200000
