"""Fuzz and failure-injection tests for the dlib stack.

The wire decoder faces bytes from the network; it must fail *only* with
DlibProtocolError (never segfault-adjacent numpy errors, MemoryError from
forged lengths, or silent garbage), and the server must survive
misbehaving clients.
"""

import socket
import struct

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dlib import (
    DlibClient,
    DlibProtocolError,
    DlibServer,
    decode_message,
    decode_value,
    encode_value,
)
from repro.dlib.transport import Stream, pipe_pair


class TestDecoderFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        """Arbitrary bytes either decode or raise DlibProtocolError."""
        try:
            decode_value(data)
        except DlibProtocolError:
            pass

    @given(st.binary(max_size=100))
    @settings(max_examples=150)
    def test_random_messages_never_crash(self, data):
        try:
            decode_message(data)
        except DlibProtocolError:
            pass

    @given(st.binary(min_size=1, max_size=60), st.integers(0, 59))
    @settings(max_examples=200)
    def test_bitflipped_valid_wire_never_crashes(self, payload, position):
        """Corrupting one byte of valid wire data stays contained."""
        wire = bytearray(encode_value([payload.decode("latin1"), 1, 2.5]))
        wire[position % len(wire)] ^= 0xFF
        try:
            decode_value(bytes(wire))
        except DlibProtocolError:
            pass

    def test_forged_giant_array_header_rejected_cheaply(self):
        """A forged shape cannot make the decoder allocate gigabytes."""
        out = bytearray()
        out += b"A"
        out += struct.pack("<B", 3) + b"<f8"
        out += struct.pack("<B", 1)
        out += struct.pack("<q", 2**40)  # claims a terabyte-long array
        out += struct.pack("<Q", 16)  # but only 16 payload bytes
        out += b"\0" * 16
        with pytest.raises(DlibProtocolError):
            decode_value(bytes(out))

    def test_forged_negative_dimension(self):
        out = bytearray()
        out += b"A"
        out += struct.pack("<B", 3) + b"<f8"
        out += struct.pack("<B", 1)
        out += struct.pack("<q", -4)
        out += struct.pack("<Q", 32)
        out += b"\0" * 32
        with pytest.raises(DlibProtocolError):
            decode_value(bytes(out))

    def test_unhashable_dict_key_rejected(self):
        # A dict whose key is a list: legal to encode? Keys go through the
        # generic encoder, so craft the wire directly.
        key = encode_value([1, 2])
        val = encode_value(0)
        wire = b"M" + struct.pack("<I", 1) + key + val
        with pytest.raises(DlibProtocolError):
            decode_value(wire)


class TestTransportAbuse:
    def test_oversized_frame_announcement_rejected(self):
        a, b = pipe_pair()
        try:
            # Announce a 2 GB frame without sending it.
            a._sock.sendall(struct.pack("<I", (1 << 31)))
            with pytest.raises(ConnectionError):
                b.recv()
        finally:
            a.close()
            b.close()

    def test_oversized_send_rejected_locally(self):
        a, b = pipe_pair()
        try:
            with pytest.raises(ValueError):
                # Don't materialize 1 GB; bytearray of len > MAX_FRAME via
                # a fake object is overkill — use MAX_FRAME boundary check.
                from repro.dlib.transport import MAX_FRAME

                class FakeBytes(bytes):
                    def __len__(self):
                        return MAX_FRAME + 1

                a.send(FakeBytes())
        finally:
            a.close()
            b.close()

    def test_closed_stream_raises(self):
        a, b = pipe_pair()
        a.close()
        with pytest.raises(ConnectionError):
            a.send(b"x")
        with pytest.raises(ConnectionError):
            a.recv()
        b.close()

    def test_peer_disconnect_mid_frame(self):
        a, b = pipe_pair()
        # Send a frame header promising 100 bytes, then vanish.
        a._sock.sendall(struct.pack("<I", 100) + b"partial")
        a.close()
        with pytest.raises(ConnectionError):
            b.recv()
        b.close()


class TestServerAbuse:
    @pytest.fixture()
    def server(self):
        srv = DlibServer()
        srv.register("echo", lambda ctx, v: v)
        srv.start()
        yield srv
        srv.stop()

    def test_garbage_connection_does_not_kill_server(self, server):
        from tests import wait_until

        host, port = server.address
        sock = socket.create_connection((host, port))
        sock.sendall(struct.pack("<I", 12) + b"not-a-messag")
        sock.close()
        # Wait for the server to actually shed the offender (progress
        # counter, not a sleep — tests/__init__.py rule 2).
        wait_until(lambda: server.context.disconnects >= 1)
        with DlibClient(host, port) as c:
            assert c.call("echo", 7) == 7

    def test_non_call_message_disconnects_offender_only(self, server):
        from repro.dlib.protocol import MessageKind, encode_message
        from repro.dlib.transport import connect_tcp

        bad = connect_tcp(*server.address)
        bad.send(encode_message(MessageKind.RESULT, 1, None))
        # The server drops the offender; a well-behaved client still works.
        with DlibClient(*server.address) as good:
            assert good.call("echo", "ok") == "ok"
        bad.close()

    def test_malformed_call_payload(self, server):
        from repro.dlib.protocol import MessageKind, encode_message
        from repro.dlib.transport import connect_tcp

        bad = connect_tcp(*server.address)
        bad.send(encode_message(MessageKind.CALL, 1, {"not_proc": True}))
        with DlibClient(*server.address) as good:
            assert good.call("echo", 1) == 1
        bad.close()

    def test_many_rapid_connect_disconnect(self, server):
        for _ in range(20):
            c = DlibClient(*server.address)
            c.close()
        with DlibClient(*server.address) as c:
            assert c.call("echo", "alive") == "alive"


class TestAdversarialTransport:
    """Partial frames, mid-payload deaths, and stalls against the server."""

    @pytest.fixture()
    def server(self):
        srv = DlibServer()
        srv.register("echo", lambda ctx, v: v)
        srv.start()
        yield srv
        srv.stop()

    def test_partial_header_then_disconnect(self, server):
        """Two bytes of a four-byte header, then gone: server sheds it."""
        from tests import wait_until

        sock = socket.create_connection(server.address)
        sock.sendall(b"\x10\x00")  # half a length prefix
        sock.close()
        wait_until(lambda: server.context.disconnects >= 1)
        with DlibClient(*server.address) as c:
            assert c.call("echo", "fine") == "fine"
            # Teardown accounting: the staller was subtracted, we remain.
            assert server.context.clients_connected == 1
            assert server.context.disconnects >= 1

    def test_mid_payload_disconnect(self, server):
        """A frame promising 100 bytes delivers 7, then the peer dies."""
        from tests import wait_until

        sock = socket.create_connection(server.address)
        sock.sendall(struct.pack("<I", 100) + b"partial")
        sock.close()
        wait_until(lambda: server.context.disconnects >= 1)
        with DlibClient(*server.address) as c:
            assert c.call("echo", "fine") == "fine"

    def test_server_killed_between_call_and_result(self):
        """The client sees a clean transport error, not a hang."""
        import threading
        import time

        release = threading.Event()
        srv = DlibServer()

        @srv.procedure
        def slow(ctx):
            release.set()
            time.sleep(0.3)
            return "done"

        srv.start()
        client = DlibClient(*srv.address)
        errors = []

        def call():
            try:
                client.call("slow")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        t = threading.Thread(target=call)
        t.start()
        release.wait(timeout=2.0)
        srv.stop()  # kills the connection while RESULT is pending
        t.join(timeout=5.0)
        assert not t.is_alive()
        client.close()
        if errors:  # the RESULT may have squeaked out before the close
            assert isinstance(errors[0], (ConnectionError, OSError))

    def test_stalled_partial_header_does_not_block_other_clients(self, server):
        """Head-of-line blocking is gone: one wedged client, zero impact.

        Before per-connection reassembly, the blocking ``recv`` inside
        the select loop meant these echo calls would hang forever.
        """
        import time

        staller = socket.create_connection(server.address)
        staller.sendall(b"\x99")  # one byte of header, then silence
        try:
            with DlibClient(*server.address) as c:
                latencies = []
                for i in range(20):
                    t0 = time.perf_counter()
                    assert c.call("echo", i) == i
                    latencies.append(time.perf_counter() - t0)
                assert max(latencies) < 1.0
        finally:
            staller.close()

    def test_interleaved_partial_frames_reassemble(self, server):
        """A frame trickled one byte at a time still dispatches correctly."""
        from repro.dlib.protocol import MessageKind, encode_message

        sock = socket.create_connection(server.address)
        try:
            payload = encode_message(
                MessageKind.CALL, 9, {"proc": "echo", "args": ["trickle"]}
            )
            frame = struct.pack("<I", len(payload)) + payload
            for i in range(len(frame)):
                sock.sendall(frame[i : i + 1])
            with Stream(sock) as s:
                from repro.dlib.protocol import decode_message as dm

                kind, rid, result = dm(s.recv())
                assert rid == 9 and result == "trickle"
                sock = None  # Stream.close owns the socket now
        finally:
            if sock is not None:
                sock.close()


class TestEventLoopFuzz:
    """Interleaved partial reads *and* writes across many sockets at once.

    The event loop reassembles per-connection byte streams independently;
    no fragmentation schedule on one socket may corrupt, reorder, or
    starve another.  Hypothesis drives the fragmentation: each example is
    a set of clients, each with its own chunk-size pattern for dribbling
    its requests onto the wire.
    """

    @pytest.fixture()
    def server(self):
        srv = DlibServer()
        srv.register("echo", lambda ctx, v: v)
        srv.start()
        yield srv
        srv.stop()

    @given(
        plans=st.lists(
            st.lists(st.integers(1, 7), min_size=1, max_size=6),
            min_size=2,
            max_size=6,
        ),
    )
    @settings(
        max_examples=15,
        deadline=None,
        # The server is stateless (echo) and every example dials fresh
        # sockets, so sharing one server across examples is sound.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_fragmented_calls_interleaved_across_sockets(self, server, plans):
        from repro.dlib.protocol import MessageKind, decode_message, encode_message

        socks = [socket.create_connection(server.address) for _ in plans]
        try:
            # Build each client's outbound bytes: two calls back to back,
            # so a frame boundary always falls mid-stream.
            pending = []
            for i, _ in enumerate(plans):
                buf = b""
                for rid in (2 * i + 1, 2 * i + 2):
                    payload = encode_message(
                        MessageKind.CALL, rid, {"proc": "echo", "args": [[rid, i]]}
                    )
                    buf += struct.pack("<I", len(payload)) + payload
                pending.append(buf)
            # Round-robin the sockets, each sending its next chunk (sized
            # by its plan) per turn — interleaved partial writes from the
            # server's point of view.
            turn = 0
            while any(pending):
                for i, sock in enumerate(socks):
                    if not pending[i]:
                        continue
                    sizes = plans[i]
                    n = sizes[turn % len(sizes)]
                    sock.sendall(pending[i][:n])
                    pending[i] = pending[i][n:]
                turn += 1
            # Every client gets exactly its own replies, in its own order.
            for i, sock in enumerate(socks):
                s = Stream(sock)
                for expect_rid in (2 * i + 1, 2 * i + 2):
                    kind, rid, result = decode_message(s.recv())
                    assert kind is MessageKind.RESULT
                    assert rid == expect_rid
                    assert result == [expect_rid, i]
        finally:
            for sock in socks:
                sock.close()

    def test_slow_reader_cannot_starve_the_loop(self, server):
        """A client that never reads its replies fills its own send queue
        only; other clients' latency stays flat."""
        import time

        from repro.dlib.protocol import MessageKind, encode_message

        hog = socket.create_connection(server.address)
        try:
            # Pile up replies the hog never reads.  Payloads are small, so
            # they queue without tripping the reply hard limit.
            payload = encode_message(
                MessageKind.CALL, 1, {"proc": "echo", "args": ["x" * 1024]}
            )
            frame = struct.pack("<I", len(payload)) + payload
            for _ in range(50):
                hog.sendall(frame)
            with DlibClient(*server.address) as c:
                for i in range(10):
                    t0 = time.perf_counter()
                    assert c.call("echo", i) == i
                    assert time.perf_counter() - t0 < 1.0
        finally:
            hog.close()
