"""Fuzz and failure-injection tests for the dlib stack.

The wire decoder faces bytes from the network; it must fail *only* with
DlibProtocolError (never segfault-adjacent numpy errors, MemoryError from
forged lengths, or silent garbage), and the server must survive
misbehaving clients.
"""

import socket
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlib import (
    DlibClient,
    DlibProtocolError,
    DlibServer,
    decode_message,
    decode_value,
    encode_value,
)
from repro.dlib.transport import Stream, pipe_pair


class TestDecoderFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        """Arbitrary bytes either decode or raise DlibProtocolError."""
        try:
            decode_value(data)
        except DlibProtocolError:
            pass

    @given(st.binary(max_size=100))
    @settings(max_examples=150)
    def test_random_messages_never_crash(self, data):
        try:
            decode_message(data)
        except DlibProtocolError:
            pass

    @given(st.binary(min_size=1, max_size=60), st.integers(0, 59))
    @settings(max_examples=200)
    def test_bitflipped_valid_wire_never_crashes(self, payload, position):
        """Corrupting one byte of valid wire data stays contained."""
        wire = bytearray(encode_value([payload.decode("latin1"), 1, 2.5]))
        wire[position % len(wire)] ^= 0xFF
        try:
            decode_value(bytes(wire))
        except DlibProtocolError:
            pass

    def test_forged_giant_array_header_rejected_cheaply(self):
        """A forged shape cannot make the decoder allocate gigabytes."""
        out = bytearray()
        out += b"A"
        out += struct.pack("<B", 3) + b"<f8"
        out += struct.pack("<B", 1)
        out += struct.pack("<q", 2**40)  # claims a terabyte-long array
        out += struct.pack("<Q", 16)  # but only 16 payload bytes
        out += b"\0" * 16
        with pytest.raises(DlibProtocolError):
            decode_value(bytes(out))

    def test_forged_negative_dimension(self):
        out = bytearray()
        out += b"A"
        out += struct.pack("<B", 3) + b"<f8"
        out += struct.pack("<B", 1)
        out += struct.pack("<q", -4)
        out += struct.pack("<Q", 32)
        out += b"\0" * 32
        with pytest.raises(DlibProtocolError):
            decode_value(bytes(out))

    def test_unhashable_dict_key_rejected(self):
        # A dict whose key is a list: legal to encode? Keys go through the
        # generic encoder, so craft the wire directly.
        key = encode_value([1, 2])
        val = encode_value(0)
        wire = b"M" + struct.pack("<I", 1) + key + val
        with pytest.raises(DlibProtocolError):
            decode_value(wire)


class TestTransportAbuse:
    def test_oversized_frame_announcement_rejected(self):
        a, b = pipe_pair()
        try:
            # Announce a 2 GB frame without sending it.
            a._sock.sendall(struct.pack("<I", (1 << 31)))
            with pytest.raises(ConnectionError):
                b.recv()
        finally:
            a.close()
            b.close()

    def test_oversized_send_rejected_locally(self):
        a, b = pipe_pair()
        try:
            with pytest.raises(ValueError):
                # Don't materialize 1 GB; bytearray of len > MAX_FRAME via
                # a fake object is overkill — use MAX_FRAME boundary check.
                from repro.dlib.transport import MAX_FRAME

                class FakeBytes(bytes):
                    def __len__(self):
                        return MAX_FRAME + 1

                a.send(FakeBytes())
        finally:
            a.close()
            b.close()

    def test_closed_stream_raises(self):
        a, b = pipe_pair()
        a.close()
        with pytest.raises(ConnectionError):
            a.send(b"x")
        with pytest.raises(ConnectionError):
            a.recv()
        b.close()

    def test_peer_disconnect_mid_frame(self):
        a, b = pipe_pair()
        # Send a frame header promising 100 bytes, then vanish.
        a._sock.sendall(struct.pack("<I", 100) + b"partial")
        a.close()
        with pytest.raises(ConnectionError):
            b.recv()
        b.close()


class TestServerAbuse:
    @pytest.fixture()
    def server(self):
        srv = DlibServer()
        srv.register("echo", lambda ctx, v: v)
        srv.start()
        yield srv
        srv.stop()

    def test_garbage_connection_does_not_kill_server(self, server):
        host, port = server.address
        sock = socket.create_connection((host, port))
        sock.sendall(struct.pack("<I", 12) + b"not-a-messag")
        sock.close()
        import time

        time.sleep(0.2)
        with DlibClient(host, port) as c:
            assert c.call("echo", 7) == 7

    def test_non_call_message_disconnects_offender_only(self, server):
        from repro.dlib.protocol import MessageKind, encode_message
        from repro.dlib.transport import connect_tcp

        bad = connect_tcp(*server.address)
        bad.send(encode_message(MessageKind.RESULT, 1, None))
        # The server drops the offender; a well-behaved client still works.
        with DlibClient(*server.address) as good:
            assert good.call("echo", "ok") == "ok"
        bad.close()

    def test_malformed_call_payload(self, server):
        from repro.dlib.protocol import MessageKind, encode_message
        from repro.dlib.transport import connect_tcp

        bad = connect_tcp(*server.address)
        bad.send(encode_message(MessageKind.CALL, 1, {"not_proc": True}))
        with DlibClient(*server.address) as good:
            assert good.call("echo", 1) == 1
        bad.close()

    def test_many_rapid_connect_disconnect(self, server):
        for _ in range(20):
            c = DlibClient(*server.address)
            c.close()
        with DlibClient(*server.address) as c:
            assert c.call("echo", "alive") == "alive"
