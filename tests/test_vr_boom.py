"""Tests for BOOM kinematics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import is_rigid, transform_points
from repro.vr import Boom, BoomJoint, DEFAULT_BOOM_GEOMETRY

angles6 = st.lists(
    st.floats(-1.0, 1.0, allow_nan=False), min_size=6, max_size=6
).map(np.array)


class TestBoomJoint:
    def test_axis_validation(self):
        with pytest.raises(ValueError):
            BoomJoint("w")

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            BoomJoint("x", lo=1.0, hi=1.0)

    def test_transform_rotates_then_translates(self):
        j = BoomJoint("z", offset=(1.0, 0.0, 0.0))
        m = j.transform(np.pi / 2)
        # Origin maps to the rotated offset.
        np.testing.assert_allclose(
            transform_points(m, [0.0, 0.0, 0.0]), [0.0, 1.0, 0.0], atol=1e-12
        )


class TestBoomKinematics:
    def test_needs_six_joints(self):
        with pytest.raises(ValueError):
            Boom(DEFAULT_BOOM_GEOMETRY[:5])

    def test_zero_pose_geometry(self):
        """At zero angles the head sits at column + both links + eye offset."""
        boom = Boom()
        pos = boom.head_position(np.zeros(6))
        np.testing.assert_allclose(pos, [0.9 + 0.9 + 0.1, 0.0, 1.2], atol=1e-9)

    @given(angles6)
    @settings(max_examples=50)
    def test_pose_always_rigid(self, angles):
        boom = Boom()
        assert is_rigid(boom.head_pose(angles), tol=1e-9)

    @given(angles6)
    @settings(max_examples=50)
    def test_view_matrix_inverts_pose(self, angles):
        """Section 3: the view matrix is the inverted head matrix."""
        boom = Boom()
        pose = boom.head_pose(angles)
        view = boom.view_matrix(angles)
        np.testing.assert_allclose(pose @ view, np.eye(4), atol=1e-9)

    def test_base_azimuth_swings_head(self):
        boom = Boom()
        a = boom.head_position([0.0, 0, 0, 0, 0, 0])
        b = boom.head_position([np.pi / 2, 0, 0, 0, 0, 0])
        # Same radius from the column, rotated 90 degrees.
        np.testing.assert_allclose(np.hypot(*a[:2]), np.hypot(*b[:2]), atol=1e-9)
        np.testing.assert_allclose(b[:2], [0.0, a[0]], atol=1e-9)

    def test_joint_limits_clamp(self):
        boom = Boom()
        wild = np.array([0.0, 99.0, 0.0, 0.0, 0.0, 0.0])
        clamped = boom.clamp_angles(wild)
        assert clamped[1] == pytest.approx(1.2)  # shoulder hi limit

    def test_angle_shape_validation(self):
        with pytest.raises(ValueError):
            Boom().head_pose(np.zeros(5))


class TestEncoders:
    def test_quantization_grid(self):
        boom = Boom(encoder_counts=360)  # 1-degree encoders
        q = boom.quantize(np.array([0.5004, 0, 0, 0, 0, 0]))
        res = 2 * np.pi / 360
        np.testing.assert_allclose(q[0] % res, 0.0, atol=1e-12)

    def test_counts_roundtrip(self):
        boom = Boom(encoder_counts=4096)
        angles = np.array([0.3, -0.5, 1.0, 0.1, -0.2, 0.05])
        counts = boom.angles_to_counts(angles)
        back = boom.counts_to_angles(counts)
        np.testing.assert_allclose(back, angles, atol=2 * np.pi / 4096)

    def test_quantization_error_bounded(self):
        boom = Boom(encoder_counts=1024)
        rng = np.random.default_rng(1)
        res = 2 * np.pi / 1024
        for _ in range(20):
            angles = rng.uniform(-1, 1, 6)
            q = boom.quantize(angles)
            assert np.all(np.abs(q - angles) <= res / 2 + 1e-12)

    def test_high_resolution_encoder_negligible_error(self):
        boom = Boom(encoder_counts=2**20)
        angles = np.array([0.3, -0.5, 1.0, 0.1, -0.2, 0.05])
        p1 = boom.head_position(angles)
        p2 = boom.head_pose(angles, quantize=False)[:3, 3]
        np.testing.assert_allclose(p1, p2, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Boom(encoder_counts=1)
        with pytest.raises(ValueError):
            Boom().counts_to_angles(np.zeros(4, dtype=int))


class TestEnvelope:
    def test_reach_envelope_contains_zero_pose(self):
        boom = Boom()
        lo, hi = boom.reach_envelope(n_samples=200)
        zero = boom.head_position(np.zeros(6))
        assert np.all(zero >= lo - 1e-9) and np.all(zero <= hi + 1e-9)

    def test_envelope_bounded_by_link_lengths(self):
        boom = Boom()
        lo, hi = boom.reach_envelope(n_samples=200)
        max_reach = 0.9 + 0.9 + 0.1 + 1e-9
        assert np.all(np.abs(np.array([lo[:2], hi[:2]])) <= max_reach)
