"""Tests for the software renderer: framebuffer, camera, rasterizer, stereo."""

import numpy as np
import pytest

from repro.render import (
    Camera,
    Framebuffer,
    HandGlyph,
    HeadGlyph,
    PathBundle,
    PointCloud,
    RakeGlyph,
    STEREO_LEFT_MASK,
    STEREO_RIGHT_MASK,
    Scene,
    WriteMask,
    draw_points,
    draw_polyline,
    draw_polylines,
    render_anaglyph,
)
from repro.util import look_at


@pytest.fixture()
def fb():
    return Framebuffer(64, 48)


@pytest.fixture()
def cam():
    # Looking down -y at the origin from y=5, z up.
    return Camera(look_at([0, 5, 0], [0, 0, 0], up=[0, 0, 1]))


class TestFramebuffer:
    def test_init(self, fb):
        assert fb.color.shape == (48, 64, 3)
        assert np.all(np.isinf(fb.depth))

    def test_validation(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 10)

    def test_scatter_depth_test(self, fb):
        fb.scatter([5], [5], [2.0], np.array([255, 0, 0], dtype=np.uint8))
        fb.scatter([5], [5], [3.0], np.array([0, 255, 0], dtype=np.uint8))
        np.testing.assert_array_equal(fb.color[5, 5], [255, 0, 0])
        fb.scatter([5], [5], [1.0], np.array([0, 0, 255], dtype=np.uint8))
        np.testing.assert_array_equal(fb.color[5, 5], [0, 0, 255])

    def test_scatter_in_batch_duplicates_resolve_nearest(self, fb):
        n = fb.scatter(
            [7, 7], [7, 7], [5.0, 1.0],
            np.array([[255, 0, 0], [0, 255, 0]], dtype=np.uint8),
        )
        np.testing.assert_array_equal(fb.color[7, 7], [0, 255, 0])
        assert n >= 1

    def test_scatter_out_of_bounds_discarded(self, fb):
        n = fb.scatter([-1, 999], [0, 0], [1.0, 1.0], np.array([255, 255, 255], dtype=np.uint8))
        assert n == 0

    def test_writemask_protects_channels(self, fb):
        fb.scatter([3], [3], [1.0], np.array([200, 0, 0], dtype=np.uint8),
                   WriteMask(red=True, green=False, blue=False))
        fb.clear_depth()
        fb.scatter([3], [3], [1.0], np.array([0, 0, 130], dtype=np.uint8),
                   WriteMask(red=False, green=False, blue=True))
        # Both survive: red from pass 1 untouched by pass 2.
        np.testing.assert_array_equal(fb.color[3, 3], [200, 0, 130])

    def test_clear_honors_mask(self, fb):
        fb.color[...] = 77
        fb.clear((0, 0, 0), WriteMask(red=True, green=False, blue=False))
        assert np.all(fb.color[..., 0] == 0)
        assert np.all(fb.color[..., 1] == 77)

    def test_ppm_roundtrip(self, fb, tmp_path):
        fb.color[10, 20] = [1, 2, 3]
        path = fb.save_ppm(tmp_path / "img.ppm")
        back = Framebuffer.load_ppm(path)
        np.testing.assert_array_equal(back.color, fb.color)

    def test_load_ppm_rejects_garbage(self, tmp_path):
        p = tmp_path / "bad.ppm"
        p.write_bytes(b"P3 garbage")
        with pytest.raises(ValueError):
            Framebuffer.load_ppm(p)

    def test_channel_view_readonly(self, fb):
        ch = fb.channel(0)
        with pytest.raises(ValueError):
            ch[0, 0] = 1


class TestCamera:
    def test_center_projection(self, fb, cam):
        xy, depth, valid = cam.project(np.array([[0.0, 0.0, 0.0]]), fb.width, fb.height)
        assert valid[0]
        np.testing.assert_allclose(xy[0], [(fb.width - 1) / 2, (fb.height - 1) / 2])
        np.testing.assert_allclose(depth[0], 5.0)

    def test_behind_camera_invalid(self, fb, cam):
        _, _, valid = cam.project(np.array([[0.0, 10.0, 0.0]]), fb.width, fb.height)
        assert not valid[0]

    def test_up_is_up(self, fb, cam):
        xy, _, _ = cam.project(np.array([[0.0, 0.0, 1.0]]), fb.width, fb.height)
        assert xy[0, 1] < (fb.height - 1) / 2  # +z is up => smaller row

    def test_nearer_is_lower_depth(self, fb, cam):
        _, d, _ = cam.project(
            np.array([[0.0, 1.0, 0.0], [0.0, -1.0, 0.0]]), fb.width, fb.height
        )
        assert d[0] < d[1]

    def test_eye_offset_shifts_projection(self, fb, cam):
        left = cam.with_eye_offset(-0.1)
        right = cam.with_eye_offset(0.1)
        p = np.array([[0.0, 0.0, 0.0]])
        xl, _, _ = left.project(p, fb.width, fb.height)
        xr, _, _ = right.project(p, fb.width, fb.height)
        assert xl[0, 0] > xr[0, 0]  # parallax

    def test_validation(self):
        with pytest.raises(ValueError):
            Camera(np.eye(3))
        with pytest.raises(ValueError):
            Camera(fov_y=0.0)
        with pytest.raises(ValueError):
            Camera(near=1.0, far=0.5)


class TestRasterizer:
    def test_draw_points_writes_pixels(self, fb, cam):
        n = draw_points(fb, cam, np.array([[0.0, 0.0, 0.0]]), (255, 255, 255))
        assert n == 1
        assert fb.nonblack_pixels() == 1

    def test_point_size(self, fb, cam):
        n = draw_points(fb, cam, np.array([[0.0, 0.0, 0.0]]), size=3)
        assert n == 9

    def test_polyline_connects(self, fb, cam):
        n = draw_polyline(
            fb, cam, np.array([[-1.0, 0.0, 0.0], [1.0, 0.0, 0.0]]), (255, 0, 0)
        )
        # A horizontal line through the middle: many contiguous pixels.
        assert n > 10
        row = fb.color[(fb.height - 1) // 2]
        lit = np.nonzero(row[:, 0])[0]
        assert np.all(np.diff(lit) == 1)  # contiguous

    def test_polyline_skips_behind_camera_segments(self, fb, cam):
        n = draw_polyline(
            fb, cam, np.array([[0.0, 10.0, 0.0], [0.0, 11.0, 0.0]])
        )
        assert n == 0

    def test_single_vertex_polyline_is_point(self, fb, cam):
        assert draw_polyline(fb, cam, np.array([[0.0, 0.0, 0.0]])) == 1

    def test_empty_inputs(self, fb, cam):
        assert draw_points(fb, cam, np.zeros((0, 3))) == 0
        assert draw_polylines(fb, cam, np.zeros((0, 5, 3))) == 0

    def test_validation(self, fb, cam):
        with pytest.raises(ValueError):
            draw_points(fb, cam, np.zeros((2, 2)))
        with pytest.raises(ValueError):
            draw_points(fb, cam, np.zeros((2, 3)), size=0)
        with pytest.raises(ValueError):
            draw_polylines(fb, cam, np.zeros((2, 3)))
        with pytest.raises(ValueError):
            draw_polylines(fb, cam, np.zeros((2, 4, 3)), lengths=np.array([9, 1]))

    def test_batch_matches_individual(self, cam):
        rng = np.random.default_rng(0)
        paths = rng.uniform(-1, 1, size=(5, 8, 3))
        fb1, fb2 = Framebuffer(64, 48), Framebuffer(64, 48)
        draw_polylines(fb1, cam, paths, color=(200, 100, 50))
        for p in paths:
            draw_polyline(fb2, cam, p, color=(200, 100, 50))
        np.testing.assert_array_equal(fb1.color, fb2.color)

    def test_lengths_truncate(self, fb, cam):
        paths = np.zeros((1, 5, 3))
        paths[0, :, 0] = np.linspace(-1, 1, 5)
        full = Framebuffer(64, 48)
        draw_polylines(full, cam, paths)
        draw_polylines(fb, cam, paths, lengths=np.array([2]))
        assert fb.nonblack_pixels() < full.nonblack_pixels()

    def test_depth_occlusion_between_lines(self, fb, cam):
        # Near line (y=2 -> depth 3) drawn first, far line (y=-2 -> depth 7)
        # crossing it second: crossing pixel keeps the near color.
        near = np.array([[-1.0, 2.0, 0.0], [1.0, 2.0, 0.0]])
        far = np.array([[0.0, -2.0, -1.0], [0.0, -2.0, 1.0]])
        draw_polyline(fb, cam, near, (255, 0, 0))
        draw_polyline(fb, cam, far, (0, 255, 0))
        # The red row and green column cross at exactly one pixel; red won.
        red_rows = np.nonzero(fb.color[..., 0].sum(axis=1))[0]
        green_cols = np.nonzero(fb.color[..., 1].sum(axis=0))[0]
        assert len(red_rows) >= 1 and len(green_cols) >= 1
        cross = fb.color[red_rows[0], green_cols[0]]
        np.testing.assert_array_equal(cross, [255, 0, 0])


class TestSceneAndStereo:
    def test_scene_draws_all_items(self, fb, cam):
        scene = Scene()
        scene.add(PointCloud(np.array([[0.0, 0.0, 0.0]])))
        scene.add(HandGlyph(np.array([0.3, 0.0, 0.0])))
        scene.add(RakeGlyph(np.array([-0.5, 0, -0.5]), np.array([0.5, 0, -0.5])))
        scene.add(HeadGlyph(np.array([0.0, 1.0, 0.5])))
        n = scene.draw(fb, cam)
        assert n > 20

    def test_scene_rejects_non_drawable(self):
        with pytest.raises(TypeError):
            Scene().add(42)

    def test_pathbundle_fade(self, fb, cam):
        paths = np.zeros((1, 10, 3))
        paths[0, :, 0] = np.linspace(-1, 1, 10)
        PathBundle(paths, color=(255, 255, 255), fade=True).draw(
            fb, cam, WriteMask()
        )
        red = fb.color[..., 0].astype(int)
        lit_row = np.argmax(red.sum(axis=1))
        lit = red[lit_row][red[lit_row] > 0]
        assert lit.max() > lit.min()  # intensity ramps along the line

    def test_anaglyph_writemask_separation(self, fb, cam):
        scene = Scene([PointCloud(np.array([[0.0, 0.0, 0.0]]), size=3)])
        left_n, right_n = render_anaglyph(scene, cam, fb, ipd=0.5)
        assert left_n > 0 and right_n > 0
        # Green never written; red and blue both present somewhere.
        assert np.all(fb.color[..., 1] == 0)
        assert fb.color[..., 0].max() > 0
        assert fb.color[..., 2].max() > 0

    def test_anaglyph_parallax(self, fb, cam):
        scene = Scene([PointCloud(np.array([[0.0, 0.0, 0.0]]))])
        render_anaglyph(scene, cam, fb, ipd=0.5)
        red_cols = np.nonzero(fb.color[..., 0].sum(axis=0))[0]
        blue_cols = np.nonzero(fb.color[..., 2].sum(axis=0))[0]
        # Left eye (red) sees the point shifted right of the right eye (blue).
        assert red_cols.mean() > blue_cols.mean()

    def test_anaglyph_zero_ipd_overlaps(self, fb, cam):
        scene = Scene([PointCloud(np.array([[0.0, 0.0, 0.0]]))])
        render_anaglyph(scene, cam, fb, ipd=0.0)
        lit = np.nonzero(np.any(fb.color > 0, axis=-1))
        assert len(lit[0]) == 1  # perfectly superposed -> magenta point
        px = fb.color[lit][0]
        assert px[0] > 0 and px[2] > 0

    def test_anaglyph_validation(self, fb, cam):
        with pytest.raises(ValueError):
            render_anaglyph(Scene(), cam, fb, ipd=-0.1)

    def test_stereo_masks(self):
        assert STEREO_LEFT_MASK.channels() == [0]
        assert STEREO_RIGHT_MASK.channels() == [2]
