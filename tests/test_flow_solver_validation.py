"""Quantitative solver validation against exact solutions.

The Taylor-Green vortex is the canonical incompressible Navier-Stokes
test: on a 2-pi-periodic box, ``u = cos x sin y F(t)``,
``v = -sin x cos y F(t)`` with ``F = exp(-2 nu t)`` is an *exact*
solution — the nonlinear term is a pure gradient absorbed by pressure,
so the field decays by viscosity alone.  A solver that gets the physics
right must reproduce the decay rate.
"""

import numpy as np
import pytest

from repro.flow import NavierStokes2D, SolverConfig


def taylor_green_sim(nx=64, nu=0.05, dt=0.01, order=3):
    cfg = SolverConfig(
        nx=nx,
        ny=nx,
        lx=2 * np.pi,
        ly=2 * np.pi,
        nu=nu,
        dt=dt,
        u_inf=0.0,
        sponge_strength=0.0,  # no forcing: free decay
        advection_order=order,
    )
    sim = NavierStokes2D(cfg)
    x, y = sim.cell_centers()
    sim.set_velocity(np.cos(x) * np.sin(y), -np.sin(x) * np.cos(y))
    return sim


class TestTaylorGreen:
    def test_energy_decay_rate(self):
        """Kinetic energy decays as exp(-4 nu t)."""
        sim = taylor_green_sim()
        e0 = sim.kinetic_energy()
        n_steps = 100
        sim.run(n_steps)
        t = n_steps * sim.config.dt
        expected = e0 * np.exp(-4 * sim.config.nu * t)
        assert sim.kinetic_energy() == pytest.approx(expected, rel=0.02)

    def test_pointwise_field_decay(self):
        """The velocity *pattern* is preserved; only the amplitude decays."""
        sim = taylor_green_sim()
        x, y = sim.cell_centers()
        sim.run(50)
        t = 50 * sim.config.dt
        f = np.exp(-2 * sim.config.nu * t)
        np.testing.assert_allclose(sim.u, np.cos(x) * np.sin(y) * f, atol=0.01)
        np.testing.assert_allclose(sim.v, -np.sin(x) * np.cos(y) * f, atol=0.01)

    def test_stays_divergence_free(self):
        sim = taylor_green_sim()
        sim.run(50)
        assert np.abs(sim.divergence()).max() < 1e-10

    def test_refinement_improves_accuracy(self):
        """Halving dt reduces the energy-decay error."""

        def error(dt, steps):
            sim = taylor_green_sim(dt=dt)
            e0 = sim.kinetic_energy()
            sim.run(steps)
            exact = e0 * np.exp(-4 * sim.config.nu * steps * dt)
            return abs(sim.kinetic_energy() - exact) / exact

        coarse = error(0.04, 25)
        fine = error(0.01, 100)
        assert fine < coarse

    def test_linear_advection_more_diffusive(self):
        """Order-1 semi-Lagrangian loses extra energy vs order-3 —
        the numerical-diffusion effect documented in the solver."""
        decayed = {}
        for order in (1, 3):
            sim = taylor_green_sim(order=order)
            sim.run(100)
            decayed[order] = sim.kinetic_energy()
        assert decayed[1] < decayed[3]

    def test_set_velocity_validation(self):
        sim = taylor_green_sim(nx=16)
        with pytest.raises(ValueError):
            sim.set_velocity(np.zeros((4, 4)), np.zeros((4, 4)))
