"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.shape == (24, 24, 12)
        assert args.frames == 8


class TestInfoAndTables:
    def test_info(self):
        code, out = run_cli("info")
        assert code == 0
        assert "Distributed Virtual Windtunnel" in out
        assert "131,072" in out

    def test_tables(self):
        code, out = run_cli("tables")
        assert code == 0
        assert "Table 1" in out and "Table 2" in out and "Table 3" in out
        assert "1.144" in out  # Table 1 row 1
        assert "682" in out  # Table 2 row 1
        assert "10,526" in out or "10526" in out  # Table 3 row 2


class TestDemoAndReplay:
    def test_demo_writes_frame_and_recording(self, tmp_path):
        frame = tmp_path / "frame.ppm"
        session = tmp_path / "session.jsonl"
        code, out = run_cli(
            "demo",
            "--shape", "12", "12", "6",
            "--timesteps", "4",
            "--frames", "3",
            "--output", str(frame),
            "--record", str(session),
        )
        assert code == 0
        assert frame.exists()
        assert session.exists()
        assert "wrote" in out

        from repro.render import Framebuffer

        fb = Framebuffer.load_ppm(frame)
        assert fb.nonblack_pixels() > 0

    def test_mono_demo(self, tmp_path):
        frame = tmp_path / "mono.ppm"
        code, _ = run_cli(
            "demo", "--shape", "12", "12", "6", "--timesteps", "4",
            "--frames", "2", "--output", str(frame), "--mono",
        )
        assert code == 0
        from repro.render import Framebuffer

        fb = Framebuffer.load_ppm(frame)
        # Mono rendering uses all channels (not writemask-separated).
        assert fb.color[..., 1].max() > 0

    def test_replay_roundtrip(self, tmp_path):
        session = tmp_path / "session.jsonl"
        run_cli(
            "demo", "--shape", "12", "12", "6", "--timesteps", "4",
            "--frames", "2", "--output", str(tmp_path / "f.ppm"),
            "--record", str(session),
        )
        code, out = run_cli(
            "replay", str(session), "--shape", "12", "12", "6",
            "--timesteps", "4",
        )
        assert code == 0
        assert "replaying" in out
        assert "1 rakes" in out
