"""Tests for session recording and replay."""

import numpy as np
import pytest

from repro.core import ToolSettings, WindtunnelClient, WindtunnelServer
from repro.core.recording import SessionPlayer, SessionRecorder, attach_recorder
from repro.flow import MemoryDataset, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid


def make_dataset():
    grid = cartesian_grid((9, 9, 5), lo=(0, 0, 0), hi=(8, 8, 4))
    vel = sample_on_grid(UniformFlow([0.5, 0, 0]), grid, np.arange(4) * 0.2)
    return MemoryDataset(grid, vel, dt=0.2)


@pytest.fixture()
def server():
    srv = WindtunnelServer(
        make_dataset(), settings=ToolSettings(streamline_steps=10),
        time_fn=lambda: 0.0,
    )
    srv.start()
    yield srv
    srv.stop()


class TestRecorder:
    def test_records_events_with_timestamps(self):
        clock = iter([0.0, 1.0, 2.5]).__next__
        rec = SessionRecorder(clock=clock)
        rec.record("note", text="start")
        rec.record("time", op="pause", value=0.0)
        assert len(rec) == 2
        assert rec.events[0]["t"] == pytest.approx(1.0)
        assert rec.events[1]["t"] == pytest.approx(2.5)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SessionRecorder().record("teleport")

    def test_numpy_payloads_jsonable(self, tmp_path):
        rec = SessionRecorder()
        rec.record(
            "input",
            head_position=np.array([1.0, 2.0, 3.0]),
            hand_position=np.zeros(3),
            gesture="open",
        )
        path = rec.save(tmp_path / "session.jsonl")
        player = SessionPlayer.load(path)
        assert player.events[0]["head_position"] == [1.0, 2.0, 3.0]

    def test_load_rejects_malformed(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"t": 0.0, "kind": "warp"}\n')
        with pytest.raises(ValueError):
            SessionPlayer.load(p)

    def test_duration(self):
        player = SessionPlayer([{"t": 0.0, "kind": "note"}, {"t": 3.5, "kind": "note"}])
        assert player.duration == 3.5
        assert SessionPlayer([]).duration == 0.0


class TestRecordReplayRoundtrip:
    def test_replay_reproduces_environment(self, server, tmp_path):
        """Record a session; replay it on a fresh server; states match."""
        rec = SessionRecorder()
        with WindtunnelClient(*server.address) as client:
            attach_recorder(client, rec)
            rid = client.add_rake([1, 1, 1], [1, 5, 1], n_seeds=4)
            client.send_input([0, -5, 2], [1.0, 1.0, 1.0], "fist")
            client.send_input([0, -5, 2], [2.0, 3.0, 1.5], "fist")
            client.send_input([0, -5, 2], [2.0, 3.0, 1.5], "open")
            client.time_control("scrub", 2.0)
            recorded_rake = server.env.rakes[rid].to_dict()
            recorded_clock = server.env.clock.position(0.0)
        path = rec.save(tmp_path / "session.jsonl")

        replay_server = WindtunnelServer(
            make_dataset(), settings=ToolSettings(streamline_steps=10),
            time_fn=lambda: 0.0,
        )
        replay_server.start()
        try:
            with WindtunnelClient(*replay_server.address) as client2:
                summary = SessionPlayer.load(path).replay(client2)
            assert summary["counts"] == {"add_rake": 1, "input": 3, "time": 1}
            new_id = summary["rake_map"][rid]
            replayed = replay_server.env.rakes[new_id].to_dict()
            np.testing.assert_allclose(replayed["end_a"], recorded_rake["end_a"])
            np.testing.assert_allclose(replayed["end_b"], recorded_rake["end_b"])
            assert replay_server.env.clock.position(0.0) == pytest.approx(
                recorded_clock
            )
        finally:
            replay_server.stop()

    def test_remove_rake_uses_id_mapping(self, server, tmp_path):
        rec = SessionRecorder()
        with WindtunnelClient(*server.address) as client:
            attach_recorder(client, rec)
            rid = client.add_rake([1, 1, 1], [1, 5, 1])
            client.remove_rake(rid)
        path = rec.save(tmp_path / "s.jsonl")
        replay_server = WindtunnelServer(make_dataset(), time_fn=lambda: 0.0)
        replay_server.start()
        try:
            with WindtunnelClient(*replay_server.address) as c2:
                SessionPlayer.load(path).replay(c2)
            assert len(replay_server.env.rakes) == 0
        finally:
            replay_server.stop()

    def test_realtime_pacing_sleeps(self):
        slept = []
        player = SessionPlayer(
            [
                {"t": 0.0, "kind": "note"},
                {"t": 0.5, "kind": "note"},
                {"t": 1.5, "kind": "note"},
            ]
        )

        class DummyClient:
            pass

        player.replay(DummyClient(), realtime=True, sleep=slept.append)
        np.testing.assert_allclose(slept, [0.5, 1.0])
