"""The tiered timestep cache: tiers 1/3, the ladder, and wt.metrics.

Tier 2's shared-memory protocol has its own suite
(test_diskio_shmcache.py); the network block server has
test_blockserver.py.  This file covers the pure-Python pieces — the
TierStats accounting contract (exact reconciliation, replay-on-bind),
the L1 LRU's budgets and read-only discipline, the modeled source tier,
the L1→L2→source fall-through, and the end-to-end guarantee that
``wt.metrics`` reports cache counters that reconcile exactly with the
loads a deterministic session injected.
"""

import numpy as np
import pytest

from repro.diskio import CONVEX_DISK, TieredTimestepCache, TimestepLoader
from repro.diskio.cache import (
    TIER_L1,
    TIER_L2,
    TIER_SOURCE,
    DatasetSource,
    TierStats,
    TimestepCache,
    dataset_key,
    decoded_timestep_nbytes,
)
from repro.flow import tapered_cylinder_dataset
from repro.obs import MetricsRegistry

SHAPE = (8, 8, 4)
TIMESTEPS = 5


@pytest.fixture(scope="module")
def dataset():
    return tapered_cylinder_dataset(shape=SHAPE, n_timesteps=TIMESTEPS, dt=0.25)


class TestTierStats:
    def test_exact_accounting(self):
        s = TierStats("l1")
        s.hit(100)
        s.hit(50)
        s.miss()
        s.evict(2)
        s.stall(0.5)
        assert (s.hits, s.misses, s.bytes, s.evictions) == (2, 1, 150, 2)
        assert s.stall_seconds == 0.5
        assert s.accesses == 3
        assert s.hit_rate == pytest.approx(2 / 3)

    def test_bind_replays_accrued_totals(self):
        s = TierStats("l2")
        s.hit(64)
        s.miss()
        s.evict()
        registry = MetricsRegistry()
        s.bind_registry(registry)
        counters = registry.snapshot()["counters"]
        assert counters["cache.l2.hits"] == 1
        assert counters["cache.l2.misses"] == 1
        assert counters["cache.l2.bytes"] == 64
        assert counters["cache.l2.evictions"] == 1
        # Post-bind activity flows through live; rebinding the same
        # registry must not double-count the replay.
        s.hit(10)
        s.bind_registry(registry)
        counters = registry.snapshot()["counters"]
        assert counters["cache.l2.hits"] == 2
        assert counters["cache.l2.bytes"] == 74

    def test_negative_stall_clamped(self):
        s = TierStats("source")
        s.stall(-1.0)
        assert s.stall_seconds == 0.0


class TestTimestepCache:
    def _arr(self, fill, nbytes=None, n=8):
        return np.full(n, float(fill))

    def test_lru_eviction_order(self):
        c = TimestepCache(capacity_timesteps=2)
        c.put(0, self._arr(0))
        c.put(1, self._arr(1))
        c.get(0)  # refresh 0: next eviction takes 1
        c.put(2, self._arr(2))
        assert c.keys == [0, 2]
        assert c.stats.evictions == 1

    def test_byte_budget_evicts(self):
        one = self._arr(1)
        c = TimestepCache(capacity_timesteps=None, capacity_bytes=one.nbytes * 2)
        c.put(0, self._arr(0))
        c.put(1, self._arr(1))
        assert len(c) == 2
        c.put(2, self._arr(2))
        assert c.keys == [1, 2]
        assert c.resident_bytes == one.nbytes * 2

    def test_oversized_entry_still_flows(self):
        c = TimestepCache(capacity_timesteps=None, capacity_bytes=8)
        big = np.zeros(64)
        view = c.put(0, big)
        assert c.peek(0) is not None
        assert view.nbytes == big.nbytes

    def test_entries_are_read_only(self):
        c = TimestepCache(capacity_timesteps=2)
        view = c.put(0, np.arange(4.0))
        with pytest.raises(ValueError):
            view[0] = 99.0
        with pytest.raises(ValueError):
            c.get(0)[1] = 99.0

    def test_get_counts_peek_does_not(self):
        c = TimestepCache(capacity_timesteps=2)
        c.put(0, self._arr(0))
        c.get(0)
        c.get(1)
        c.peek(0)
        c.peek(1)
        assert (c.stats.hits, c.stats.misses) == (1, 1)

    def test_evict_listener_fires_outside_lock(self):
        c = TimestepCache(capacity_timesteps=1)
        seen = []
        c.add_evict_listener(lambda t, arr: (seen.append(t), c.keys))
        c.put(0, self._arr(0))
        c.put(1, self._arr(1))
        assert seen == [0]

    def test_pop_is_not_an_eviction(self):
        c = TimestepCache(capacity_timesteps=2)
        c.put(0, self._arr(0))
        c.pop(0)
        assert c.stats.evictions == 0
        assert len(c) == 0 and c.resident_bytes == 0

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            TimestepCache(capacity_timesteps=None, capacity_bytes=None)
        with pytest.raises(ValueError):
            TimestepCache(capacity_timesteps=0)
        with pytest.raises(ValueError):
            TimestepCache(capacity_timesteps=None, capacity_bytes=0)

    def test_from_residency_budgets_decoded_bytes(self, dataset):
        c = TimestepCache.from_residency(dataset, memory_bytes=1 << 30)
        assert c.capacity_timesteps >= 1
        assert c.capacity_bytes == c.capacity_timesteps * decoded_timestep_nbytes(
            dataset
        )


class TestDatasetSource:
    def test_modeled_charge_accumulates_without_sleeping(self, dataset):
        charges = []
        src = DatasetSource(dataset, CONVEX_DISK, sleep=charges.append)
        src.read(0)
        src.read(1)
        expected = 2 * CONVEX_DISK.read_time(dataset.timestep_nbytes)
        assert src.modeled_read_seconds == pytest.approx(expected)
        assert sum(charges) == pytest.approx(expected)
        assert src.stats.stall_seconds == pytest.approx(expected)
        assert src.stats.hits == 2

    def test_no_disk_model_no_charge(self, dataset):
        charges = []
        src = DatasetSource(dataset, None, sleep=charges.append)
        src.read(0)
        assert charges == [] and src.modeled_read_seconds == 0.0


class _FakeL2:
    """Duck-typed tier 2: a plain dict with the shm cache's protocol."""

    def __init__(self):
        self.stats = TierStats(TIER_L2)
        self.entries = {}
        self.released = []
        self.closed = False

    def get(self, t):
        arr = self.entries.get(t)
        if arr is None:
            self.stats.miss()
            return None
        self.stats.hit(arr.nbytes)
        return arr

    def put(self, t, arr):
        self.entries[t] = np.asarray(arr).copy()

    def release(self, t):
        self.released.append(t)

    def close(self):
        self.closed = True


class TestTieredTimestepCache:
    def test_fall_through_and_promotion(self, dataset):
        l2 = _FakeL2()
        tiers = TieredTimestepCache(dataset, l1_timesteps=2, l2=l2)
        arr, tier = tiers.get(0)
        assert tier == TIER_SOURCE
        assert 0 in l2.entries  # source fill published to the segment
        _, tier = tiers.get(0)
        assert tier == TIER_L1
        tiers.l1.pop(0)  # drop from L1 only: next read is an L2 hit
        arr2, tier = tiers.get(0)
        assert tier == TIER_L2
        np.testing.assert_array_equal(arr, arr2)
        assert not arr2.flags.writeable

    def test_l1_eviction_releases_the_pin(self, dataset):
        l2 = _FakeL2()
        tiers = TieredTimestepCache(dataset, l1_timesteps=1, l2=l2)
        tiers.get(0)
        tiers.l1.pop(0)
        tiers.get(0)  # L2 hit: promoted into L1 with a pin
        tiers.get(1)  # L1 capacity 1: evicts 0, releasing its pin
        assert l2.released == [0]

    def test_close_releases_pins_and_owned_l2(self, dataset):
        l2 = _FakeL2()
        tiers = TieredTimestepCache(dataset, l1_timesteps=2, l2=l2, owns_l2=True)
        tiers.get(0)
        tiers.l1.pop(0)
        tiers.get(0)  # pinned promotion
        tiers.close()
        assert l2.released == [0] and l2.closed

    def test_prefetch_hint_filters_and_survives_errors(self, dataset):
        hints = []

        class Source(DatasetSource):
            def hint(self, timesteps):
                hints.append(list(timesteps))
                raise OSError("transport down")

        tiers = TieredTimestepCache(dataset, source=Source(dataset))
        tiers.prefetch_hint([-3, 1, 2, TIMESTEPS + 9])
        tiers.prefetch_hint(0)
        tiers.prefetch_hint([-1, TIMESTEPS])  # nothing in range: no call
        assert hints == [[1, 2], [0]]

    def test_stats_snapshot_shape(self, dataset):
        tiers = TieredTimestepCache(dataset, l2=_FakeL2())
        tiers.get(0)
        snap = tiers.stats_snapshot()
        assert set(snap) == {"l1", "l2", "source"}
        assert snap["source"]["hits"] == 1
        assert snap["l1"]["misses"] == 1


class TestDatasetKey:
    def test_matches_gateway_analytic_key(self, dataset):
        from repro.gateway.worker import spec_dataset_key

        spec = {"shape": SHAPE, "n_timesteps": TIMESTEPS, "dt": 0.25}
        assert dataset_key(dataset) == spec_dataset_key(spec)

    def test_extra_distinguishes(self, dataset):
        assert dataset_key(dataset) != dataset_key(dataset, extra="other")


class TestLoaderRegressions:
    """Satellites: read-only views out of the loader, and a drain() that
    waits instead of spinning (and still propagates errors)."""

    def test_load_and_peek_return_read_only_views(self, dataset):
        with TimestepLoader(dataset, prefetch=False) as loader:
            gv = loader.load(0)
            with pytest.raises(ValueError):
                gv[0, 0, 0, 0] = 1.0
            with pytest.raises(ValueError):
                loader.peek(0)[0, 0, 0, 0] = 1.0

    def test_drain_waits_out_pending_prefetches(self, dataset):
        import threading

        gate = threading.Event()

        def slow_sleep(_):
            gate.wait(5.0)

        loader = TimestepLoader(dataset, CONVEX_DISK, sleep=slow_sleep)
        try:
            assert loader.prefetch(1)
            gate.set()
            loader.drain()
            assert loader.peek(1) is not None
            assert not loader._pending
        finally:
            loader.close()

    def test_drain_propagates_prefetch_errors(self, dataset):
        class Source(DatasetSource):
            def read(self, t):
                raise RuntimeError("disk on fire")

        cache = TieredTimestepCache(dataset, source=Source(dataset))
        loader = TimestepLoader(dataset, cache=cache)
        try:
            assert loader.prefetch(1)
            with pytest.raises(RuntimeError, match="disk on fire"):
                loader.drain()
        finally:
            loader.close()


class TestMetricsReconciliation:
    """The acceptance soak: wt.metrics cache counters reconcile exactly
    with a deterministic injected load schedule."""

    # Schedule over a 3-deep L1: analytic hit/miss counts.
    SCHEDULE = [0, 1, 2, 0, 1, 2, 3, 1, 3, 4, 0, 4]

    def _expected(self, capacity):
        resident, hits, misses = [], 0, 0
        for t in self.SCHEDULE:
            if t in resident:
                hits += 1
                resident.remove(t)
            else:
                misses += 1
                if len(resident) == capacity:
                    resident.pop(0)
            resident.append(t)
        return hits, misses

    def test_registry_counters_reconcile_exactly(self, dataset):
        registry = MetricsRegistry()
        loader = TimestepLoader(dataset, prefetch=False, capacity=3)
        loader.bind_registry(registry)
        try:
            for t in self.SCHEDULE:
                loader.load(t, auto_prefetch=False)
        finally:
            loader.close()
        hits, misses = self._expected(3)
        counters = registry.snapshot()["counters"]
        assert counters["cache.l1.hits"] == hits
        assert counters["cache.l1.misses"] == misses
        assert counters["cache.source.hits"] == misses  # every miss reads
        assert loader.hits == hits and loader.misses == misses
        # The L1 TierStats and the registry tell the same story.
        assert loader.cache.l1.stats.hits == hits

    def test_wt_metrics_exposes_cache_tiers(self, dataset):
        from repro.core import WindtunnelClient
        from repro.core.server import WindtunnelServer

        loader = TimestepLoader(dataset, prefetch=False)
        with WindtunnelServer(
            dataset,
            loader=loader,
            pipelined=False,
            time_fn=lambda: 0.0,
        ) as srv:
            with WindtunnelClient(*srv.address) as c:
                c.add_rake([2, 2, 2], [2, 6, 2], n_seeds=4)
                c.fetch_frame()
                counters = c.metrics()["registry"]["counters"]
        stats = loader.cache.l1.stats
        assert counters["cache.l1.hits"] == stats.hits
        assert counters["cache.l1.misses"] == stats.misses
        source = loader.cache.source.stats
        assert counters["cache.source.hits"] == source.hits
        assert stats.accesses > 0  # the session actually drove the cache
