"""Stateful property testing of the shared Environment.

Hypothesis drives random sequences of user joins/leaves, rake
add/removals, grabs, drags, and releases, checking the section 5.1
invariants after every step:

* a rake is locked iff exactly one user is holding it;
* a locked rake's owner exists and is holding that rake;
* no user holds more than one rake;
* locks never point at removed rakes or departed users.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import Environment
from repro.tracers import Rake

positions = st.tuples(
    st.floats(-5, 5, allow_nan=False),
    st.floats(-5, 5, allow_nan=False),
    st.floats(-5, 5, allow_nan=False),
).map(np.array)


class EnvironmentMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.env = Environment(n_timesteps=10, grab_radius=2.0)

    # -- rules ---------------------------------------------------------------

    @rule()
    def add_user(self):
        if len(self.env.users) < 6:
            self.env.add_user()

    @rule(data=st.data())
    @precondition(lambda self: self.env.users)
    def remove_user(self, data):
        uid = data.draw(st.sampled_from(sorted(self.env.users)))
        self.env.remove_user(uid)

    @rule(a=positions, b=positions)
    def add_rake(self, a, b):
        if len(self.env.rakes) < 6:
            self.env.add_rake(Rake(a, b, n_seeds=3))

    @rule(data=st.data())
    @precondition(lambda self: self.env.rakes)
    def remove_unlocked_rake(self, data):
        rid = data.draw(st.sampled_from(sorted(self.env.rakes)))
        if rid not in self.env.locks:
            self.env.remove_rake(rid)

    @rule(data=st.data(), hand=positions)
    @precondition(lambda self: self.env.users)
    def fist(self, data, hand):
        uid = data.draw(st.sampled_from(sorted(self.env.users)))
        self.env.update_user(uid, [0, 0, 0], hand, "fist")

    @rule(data=st.data(), hand=positions)
    @precondition(lambda self: self.env.users)
    def open_hand(self, data, hand):
        uid = data.draw(st.sampled_from(sorted(self.env.users)))
        self.env.update_user(uid, [0, 0, 0], hand, "open")

    @rule(data=st.data())
    @precondition(lambda self: self.env.users)
    def release(self, data):
        uid = data.draw(st.sampled_from(sorted(self.env.users)))
        self.env.release(uid)

    # -- invariants ----------------------------------------------------------

    @invariant()
    def locks_match_holdings(self):
        held = {
            user.holding[0]: uid
            for uid, user in self.env.users.items()
            if user.holding is not None
        }
        assert held == self.env.locks

    @invariant()
    def locks_reference_live_objects(self):
        for rid, uid in self.env.locks.items():
            assert rid in self.env.rakes
            assert uid in self.env.users

    @invariant()
    def one_rake_per_user(self):
        holders = [
            u.holding[0] for u in self.env.users.values() if u.holding is not None
        ]
        assert len(holders) == len(set(holders))

    @invariant()
    def snapshot_always_serializable(self):
        snap = self.env.snapshot(0.0)
        assert snap["version"] == self.env.version


TestEnvironmentStateMachine = EnvironmentMachine.TestCase
TestEnvironmentStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
