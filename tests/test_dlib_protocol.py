"""Tests for the dlib wire protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.dlib import (
    DlibProtocolError,
    MessageKind,
    decode_message,
    decode_value,
    encode_message,
    encode_value,
)

# Strategy for arbitrary wire-representable values.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def assert_wire_equal(a, b):
    """Deep equality modulo list/tuple where both sides agree."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        np.testing.assert_array_equal(a, b)
    elif isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b)
        for x, y in zip(a, b):
            assert_wire_equal(x, y)
    elif isinstance(a, dict):
        assert set(a) == set(b)
        for k in a:
            assert_wire_equal(a[k], b[k])
    else:
        assert a == b


class TestValueRoundtrip:
    @given(values)
    @settings(max_examples=200)
    def test_roundtrip_property(self, value):
        assert_wire_equal(decode_value(encode_value(value)), value)

    @given(
        arrays(
            dtype=st.sampled_from([np.float32, np.float64, np.int32, np.int64, np.uint8]),
            shape=array_shapes(max_dims=3, max_side=5),
            elements=st.integers(0, 200),
        )
    )
    @settings(max_examples=60)
    def test_array_roundtrip_property(self, arr):
        back = decode_value(encode_value(arr))
        assert back.dtype == arr.dtype.newbyteorder("<") or back.dtype == arr.dtype
        np.testing.assert_array_equal(back, arr)

    def test_float32_paths_are_compact(self):
        """A 20,000-point path batch costs ~12 bytes/point on the wire."""
        paths = np.zeros((100, 200, 3), dtype=np.float32)
        wire = encode_value(paths)
        overhead = len(wire) - paths.nbytes
        assert paths.nbytes == 240000  # the paper's benchmark transfer
        assert overhead < 64

    def test_bool_vs_int_distinguished(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True

    def test_big_int(self):
        v = 2**100
        assert decode_value(encode_value(v)) == v

    def test_numpy_scalar_becomes_python(self):
        assert decode_value(encode_value(np.float64(2.5))) == 2.5
        assert decode_value(encode_value(np.int32(7))) == 7

    def test_tuple_vs_list_preserved(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert decode_value(encode_value([1, 2])) == [1, 2]

    def test_noncontiguous_array(self):
        arr = np.arange(24, dtype=np.float64).reshape(4, 6)[::2, ::3]
        np.testing.assert_array_equal(decode_value(encode_value(arr)), arr)

    def test_empty_array(self):
        arr = np.empty((0, 3), dtype=np.float32)
        back = decode_value(encode_value(arr))
        assert back.shape == (0, 3)


class TestRejection:
    def test_unserializable_type(self):
        with pytest.raises(DlibProtocolError):
            encode_value(object())

    def test_object_array_rejected(self):
        with pytest.raises(DlibProtocolError):
            encode_value(np.array([object()], dtype=object))

    def test_deep_nesting_rejected(self):
        v = [1]
        for _ in range(50):
            v = [v]
        with pytest.raises(DlibProtocolError):
            encode_value(v)

    def test_truncated_data(self):
        wire = encode_value([1, 2, 3])
        with pytest.raises(DlibProtocolError):
            decode_value(wire[:-3])

    def test_trailing_garbage(self):
        with pytest.raises(DlibProtocolError):
            decode_value(encode_value(1) + b"xx")

    def test_unknown_tag(self):
        with pytest.raises(DlibProtocolError):
            decode_value(b"Z")

    def test_forged_array_dtype_rejected(self):
        # Craft an array header claiming an unlisted dtype.
        wire = bytearray(encode_value(np.zeros(2, dtype=np.float32)))
        assert b"<f4" in wire
        forged = bytes(wire).replace(b"<f4", b"<M8")
        with pytest.raises(DlibProtocolError):
            decode_value(forged)

    def test_array_shape_byte_mismatch(self):
        wire = bytearray(encode_value(np.zeros(4, dtype=np.uint8)))
        wire[-5] = 99  # corrupt the trailing payload length region
        with pytest.raises(DlibProtocolError):
            decode_value(bytes(wire))


class TestMessages:
    @given(st.sampled_from(list(MessageKind)), st.integers(0, 2**32 - 1), values)
    @settings(max_examples=50)
    def test_message_roundtrip(self, kind, rid, payload):
        kind2, rid2, payload2 = decode_message(encode_message(kind, rid, payload))
        assert kind2 is kind and rid2 == rid
        assert_wire_equal(payload2, payload)

    def test_short_message(self):
        with pytest.raises(DlibProtocolError):
            decode_message(b"\x01")

    def test_unknown_kind(self):
        msg = bytearray(encode_message(MessageKind.CALL, 1, None))
        msg[0] = 99
        with pytest.raises(DlibProtocolError):
            decode_message(bytes(msg))
