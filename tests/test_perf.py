"""Tests for the performance models (Table 3 accounting + pipeline)."""

import numpy as np
import pytest

from repro.flow import MemoryDataset, RigidRotation, sample_on_grid
from repro.grid import cartesian_grid
from repro.perf import (
    BENCHMARK_POINTS,
    PAPER_TIMINGS,
    benchmark_seeds,
    max_particles_at_fps,
    run_benchmark,
    simulate_pipeline,
    table3_rows,
)


@pytest.fixture(scope="module")
def dataset():
    grid = cartesian_grid((9, 9, 5), lo=(-2, -2, 0), hi=(2, 2, 1))
    vel = sample_on_grid(RigidRotation(), grid, [0.0], dtype=np.float64)
    return MemoryDataset(grid, vel)


class TestTable3Accounting:
    def test_paper_rows_exact(self):
        rows = table3_rows()
        got = [(r["max_particles"], r["streamlines_200pt"]) for r in rows]
        # Paper Table 3: the five rows verbatim.
        assert got == [
            (8000, 40),
            (10526, 52),
            (15384, 76),
            (20000, 100),
            (40000, 200),
        ]

    def test_benchmark_constants(self):
        assert BENCHMARK_POINTS == 20000
        from repro.perf.scenario import BENCHMARK_WIRE_BYTES

        assert BENCHMARK_WIRE_BYTES == 240000

    def test_paper_timing_ordering(self):
        """Convex vectorized beat Convex scalar; the SGI beat both."""
        t = PAPER_TIMINGS
        assert (
            t["sgi 8-processor workstation"]
            < t["convex vectorized across streamlines"]
            < t["convex scalar C, 4-way parallel"]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            max_particles_at_fps(0.0)
        with pytest.raises(ValueError):
            max_particles_at_fps(0.1, fps=0)


class TestRunBenchmark:
    def test_vector_runs_and_scales(self, dataset):
        res = run_benchmark(
            dataset, "vector", n_streamlines=10, points_per_line=20
        )
        assert res.n_points == 200
        assert res.seconds > 0
        assert res.max_particles_10fps == int(200 / (res.seconds * 10))

    def test_seeds_deterministic(self, dataset):
        a = benchmark_seeds(dataset, 10)
        b = benchmark_seeds(dataset, 10)
        np.testing.assert_array_equal(a, b)
        assert dataset.grid.contains(a).all()

    def test_vector_beats_scalar(self, dataset):
        """The reproduction's analogue of the paper's vectorization win.

        The win needs enough streamlines to amortize per-batch overhead —
        the same reason the Convex needed 128-long vectors.
        """
        vec = run_benchmark(
            dataset, "vector", n_streamlines=100, points_per_line=100, repeats=2
        )
        sca = run_benchmark(
            dataset, "scalar", n_streamlines=100, points_per_line=100, repeats=2
        )
        assert vec.seconds < sca.seconds

    def test_streamlines_of_200_column(self, dataset):
        res = run_benchmark(dataset, "vector", n_streamlines=5, points_per_line=10)
        assert res.streamlines_of_200 == res.max_particles_10fps // 200


class TestPipelineModel:
    def test_balanced_pipeline_speedup(self):
        res = simulate_pipeline({"load": 0.1, "compute": 0.1, "send": 0.1}, 100)
        # Three balanced stages approach 3x as n grows.
        assert 2.8 < res.speedup < 3.0
        assert res.steady_period == pytest.approx(0.1)
        assert res.serial_period == pytest.approx(0.3)

    def test_bottleneck_dominates(self):
        res = simulate_pipeline({"load": 0.01, "compute": 0.2, "send": 0.01}, 50)
        # Steady-state completion spacing equals the bottleneck stage.
        gaps = np.diff(res.completion_times[10:])
        np.testing.assert_allclose(gaps, 0.2, atol=1e-12)

    def test_exact_completion_of_first_frame(self):
        res = simulate_pipeline({"a": 1.0, "b": 2.0}, 1)
        assert res.overlapped_total == pytest.approx(3.0)
        assert res.serial_total == pytest.approx(3.0)
        assert res.speedup == pytest.approx(1.0)

    def test_paper_regime_load_hidden(self):
        """Fig 8's promise: a 1/8s-budget compute hides a smaller load."""
        res = simulate_pipeline({"load": 0.05, "compute": 0.1, "send": 0.02}, 100)
        assert res.sustains_fps(10.0)
        serial = simulate_pipeline(
            {"all": 0.05 + 0.1 + 0.02}, 100
        )
        assert not serial.sustains_fps(10.0)

    def test_list_input_and_ordering(self):
        res = simulate_pipeline([("x", 0.1), ("y", 0.05)], 10)
        assert res.stage_names == ("x", "y")

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_pipeline({}, 10)
        with pytest.raises(ValueError):
            simulate_pipeline({"a": -1.0}, 10)
        with pytest.raises(ValueError):
            simulate_pipeline({"a": 1.0}, 0)
