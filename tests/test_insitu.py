"""Unit tests for the in situ package: ring, source, steering, producer.

The determinism tests are the load-bearing ones: solver snapshot-restore
must be bit-identical, and a steered run replayed from its applied log
must reproduce the original timesteps exactly — that equivalence is what
lets the gateway journal stand in for a velocity-field checkpoint.
"""

import numpy as np
import pytest

from repro.flow.solver import NavierStokes2D, SolverConfig, tapered_cylinder_mask
from repro.grid.curvilinear import cartesian_grid
from repro.insitu import (
    STEERING_RANGES,
    LiveFlowSource,
    SolverProducer,
    SteeringConflictError,
    SteeringController,
    TimestepRing,
    extrude_slice,
)
from repro.obs import MetricsRegistry


def small_config(**overrides):
    base = dict(nx=32, ny=16)
    base.update(overrides)
    return SolverConfig(**base)


def make_source(config=None, *, nk=3, ring_capacity=8):
    config = config or small_config()
    solver = NavierStokes2D(config)
    grid = cartesian_grid(
        (config.nx, config.ny, nk),
        lo=(0.5 * config.dx, 0.5 * config.dy, 0.0),
        hi=(config.lx - 0.5 * config.dx, config.ly - 0.5 * config.dy, 1.0),
    )
    source = LiveFlowSource(
        grid,
        extrude_slice(solver.u, solver.v, nk),
        dt=config.dt,
        ring_capacity=ring_capacity,
    )
    return solver, source


class TestTimestepRing:
    def test_append_and_get(self):
        ring = TimestepRing(4)
        a = ring.append(0, np.ones((2, 2)))
        assert ring.latest == 0 and ring.oldest == 0
        assert not a.flags.writeable
        np.testing.assert_array_equal(ring.get(0), np.ones((2, 2)))

    def test_appends_must_be_sequential(self):
        ring = TimestepRing(4)
        ring.append(0, np.zeros(2))
        with pytest.raises(ValueError, match="sequential"):
            ring.append(2, np.zeros(2))

    def test_eviction_retires_oldest(self):
        ring = TimestepRing(2)
        for t in range(4):
            ring.append(t, np.full(2, t))
        assert ring.oldest == 2 and ring.latest == 3
        assert ring.evictions == 2
        assert len(ring) == 2

    def test_retired_and_future_errors_are_distinct(self):
        ring = TimestepRing(2)
        for t in range(3):
            ring.append(t, np.zeros(1))
        with pytest.raises(IndexError, match="retired"):
            ring.get(0)
        with pytest.raises(IndexError, match="not been produced"):
            ring.get(9)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TimestepRing(1)


class TestLiveFlowSource:
    def test_extrude_slice_layout(self):
        u = np.arange(6.0).reshape(3, 2)
        v = -u
        arr = extrude_slice(u, v, nk=4)
        assert arr.shape == (3, 2, 4, 3) and arr.dtype == np.float32
        np.testing.assert_array_equal(arr[..., 0, 0], u.astype(np.float32))
        np.testing.assert_array_equal(arr[..., 3, 1], v.astype(np.float32))
        assert np.all(arr[..., 2] == 0.0)

    def test_initial_shape_validated(self):
        config = small_config()
        grid = cartesian_grid((config.nx, config.ny, 3))
        with pytest.raises(ValueError, match="shape"):
            LiveFlowSource(grid, np.zeros((2, 2, 3, 3)), dt=0.01)

    def test_append_grows_n_timesteps(self):
        solver, source = make_source()
        assert source.n_timesteps == 1 and source.latest == 0
        source.append(1, extrude_slice(solver.u, solver.v, 3))
        assert source.n_timesteps == 2 and source.latest == 1
        assert source.velocity(1).shape == source.grid.shape + (3,)

    def test_retired_timestep_raises(self):
        solver, source = make_source(ring_capacity=2)
        arr = extrude_slice(solver.u, solver.v, 3)
        for t in (1, 2, 3):
            source.append(t, arr)
        with pytest.raises(IndexError, match="retired"):
            source.velocity(0)


class TestSteeringController:
    def test_validate_ranges(self):
        ok = SteeringController.validate({"u_inf": 2.0, "paused": 1})
        assert ok == {"u_inf": 2.0, "paused": True}
        with pytest.raises(ValueError, match="out of range"):
            SteeringController.validate({"u_inf": 99.0})
        with pytest.raises(ValueError, match="unknown steering parameter"):
            SteeringController.validate({"warp": 9})
        with pytest.raises(ValueError, match="at least one"):
            SteeringController.validate({})

    def test_every_range_key_accepts_midpoint(self):
        for key, (lo, hi) in STEERING_RANGES.items():
            mid = 0.5 * (lo + hi)
            assert SteeringController.validate({key: mid}) == {key: mid}

    def test_lease_is_fcfs(self):
        now = {"t": 0.0}
        ctl = SteeringController(hold_seconds=2.0, time_fn=lambda: now["t"])
        ctl.request(1, {"u_inf": 1.0})
        with pytest.raises(SteeringConflictError) as exc:
            ctl.request(2, {"u_inf": 2.0})
        assert exc.value.owner == 1 and exc.value.seconds_left > 0
        assert ctl.conflicts_total == 1

    def test_lease_expires_and_releases(self):
        now = {"t": 0.0}
        ctl = SteeringController(hold_seconds=2.0, time_fn=lambda: now["t"])
        ctl.request(1, {"u_inf": 1.0})
        now["t"] = 3.0  # expiry hands the tunnel to the next user
        ctl.request(2, {"u_inf": 2.0})
        assert ctl.release(2) is True
        assert ctl.release(1) is False  # not the holder any more
        ctl.request(1, {"u_inf": 1.5})  # released lease is free immediately

    def test_epochs_assigned_in_order(self):
        ctl = SteeringController()
        r1 = ctl.request(1, {"u_inf": 1.0})
        r2 = ctl.request(1, {"dt": 0.002})
        assert (r1["epoch"], r2["epoch"]) == (1, 2)
        assert r2["pending"] == 2
        drained = ctl.drain()
        assert [e for e, _ in drained] == [1, 2]
        assert ctl.drain() == []

    def test_applied_log_and_snapshot(self):
        ctl = SteeringController()
        ctl.request(1, {"u_inf": 1.0})
        for epoch, changes in ctl.drain():
            ctl.note_applied(epoch, 5, changes)
        assert ctl.applied_epoch == 1
        assert ctl.applied_log == [
            {"epoch": 1, "timestep": 5, "changes": {"u_inf": 1.0}}
        ]
        snap = ctl.snapshot()
        assert snap["applied_epoch"] == 1 and snap["pending"] == 0
        assert snap["requests_total"] == 1

    def test_mark_restored_seats_epoch_counter(self):
        ctl = SteeringController()
        ctl.mark_restored(
            [{"epoch": 4, "timestep": 2, "changes": {"u_inf": 2.0}}]
        )
        assert ctl.applied_epoch == 4
        assert ctl.request(1, {"dt": 0.002})["epoch"] == 5


class TestSolverDeterminism:
    def test_snapshot_restore_is_bit_identical(self):
        config = small_config()
        a = NavierStokes2D(config, obstacle=tapered_cylinder_mask(config))
        a.run(10)
        snap = a.snapshot_state()
        a.run(20)
        after_a = (a.u.copy(), a.v.copy())

        b = NavierStokes2D(small_config(u_inf=2.5))  # different start state
        b.restore_state(snap)
        b.set_obstacle(a.obstacle)
        b.run(20)
        assert np.array_equal(after_a[0], b.u)
        assert np.array_equal(after_a[1], b.v)

    def test_reconfigure_rejects_geometry(self):
        solver = NavierStokes2D(small_config())
        with pytest.raises(ValueError, match="geometry"):
            solver.reconfigure(nx=64)
        assert solver.reconfigure(u_inf=2.0).u_inf == 2.0


class TestSolverProducer:
    def make_producer(self, **kwargs):
        solver, source = make_source()
        producer = SolverProducer(
            solver,
            source,
            steps_per_timestep=kwargs.pop("steps_per_timestep", 2),
            registry=kwargs.pop("registry", MetricsRegistry()),
            **kwargs,
        )
        return producer

    def test_prime_is_idempotent(self):
        p = self.make_producer()
        assert p.available == -1
        assert p.prime() == 0
        assert p.prime() == 0
        assert p.registry.counter("insitu.timesteps_published").value == 1

    def test_advance_publishes_and_counters_reconcile(self):
        p = self.make_producer()
        p.prime()
        p.advance(4)
        assert p.available == 4
        assert p.source.n_timesteps == 5
        sim_steps = p.registry.counter("insitu.sim_steps_total").value
        published = p.registry.counter("insitu.timesteps_published").value
        # Priming publishes t=0 without stepping; every later timestep
        # is exactly steps_per_timestep solver steps.
        assert sim_steps == (published - 1) * p.steps_per_timestep

    def test_steering_applies_at_boundary_and_stamps_epochs(self):
        p = self.make_producer()
        p.prime()
        p.advance(2)
        p.steering.request(7, {"u_inf": 2.0})
        assert p.epoch_for(2) == 0
        p.advance(1)
        assert p.solver.config.u_inf == 2.0
        assert p.epoch_for(3) == 1
        assert p.steering.applied_log[0]["timestep"] == 3
        assert p.registry.counter("insitu.steer_applied").value == 1

    def test_pause_holds_frontier_but_drains_steering(self):
        p = self.make_producer()
        p.prime()
        p.advance(2)
        p.steering.request(7, {"paused": True})
        assert p.advance(3) == 2  # frontier frozen
        assert p.paused is True
        p.steering.request(7, {"paused": False, "u_inf": 3.0})
        assert p.advance(1) == 3
        assert p.solver.config.u_inf == 3.0

    def test_reset_restores_initial_condition(self):
        p = self.make_producer()
        p.prime()
        p.advance(3)
        initial_u = p._initial_snapshot["u"]
        p.steering.request(7, {"reset": True})
        p.advance(1)
        # The timestep after the reset is one solver burst from t=0.
        fresh = NavierStokes2D(small_config())
        fresh.run(p.steps_per_timestep)
        assert np.array_equal(p.solver.u, fresh.u)
        assert not np.array_equal(initial_u, p.solver.u)

    def test_cache_write_through_makes_reads_hits(self):
        from repro.diskio.cache import TieredTimestepCache

        solver, source = make_source()
        cache = TieredTimestepCache(source, l1_timesteps=8)
        p = SolverProducer(solver, source, cache=cache, steps_per_timestep=2)
        p.prime()
        p.advance(2)
        before = cache.l1.stats.snapshot()["misses"]
        for t in range(3):
            cache.get(t)
        assert cache.l1.stats.snapshot()["misses"] == before
        assert cache.l1.stats.snapshot()["appends"] == 3

    def test_obstacle_factory_drives_taper_and_angle(self):
        config = small_config()
        solver, source = make_source(config)
        calls = []

        def factory(taper, angle):
            calls.append((taper, angle))
            return tapered_cylinder_mask(config, taper=taper, angle_degrees=angle)

        p = SolverProducer(
            solver, source, steps_per_timestep=1, obstacle_factory=factory
        )
        p.prime()
        p.steering.request(7, {"taper": 0.5})
        p.advance(1)
        p.steering.request(7, {"angle": 20.0})
        p.advance(1)
        assert calls == [(0.5, 0.0), (0.5, 20.0)]
        assert p.snapshot()["geometry"] == {"taper": 0.5, "angle": 20.0}

    def test_steered_replay_is_bit_identical(self):
        # Original run: steer twice while producing eight timesteps.
        p = self.make_producer()
        p.prime()
        p.advance(2)
        p.steering.request(7, {"u_inf": 2.0})
        p.advance(3)
        p.steering.request(7, {"dt": 0.002})
        p.advance(3)
        reference = {
            t: p.source.velocity(t).copy()
            for t in range(p.source.ring.oldest, p.available + 1)
        }
        log = [dict(e) for e in p.steering.applied_log]

        # Replay on a fresh producer from the journal alone.
        q = self.make_producer()
        q.prime()
        q.replay_steering(log, until_t=p.available)
        for t, expected in reference.items():
            assert np.array_equal(q.source.velocity(t), expected), t
        assert q.steering.applied_epoch == p.steering.applied_epoch

    def test_background_thread_produces_and_stops(self):
        from tests import wait_until

        p = self.make_producer(period_seconds=0.0)
        p.start()
        try:
            wait_until(lambda: p.available >= 3)
        finally:
            p.stop()
        assert p.alive is False
        frontier = p.available
        assert p.source.velocity(frontier) is not None


class TestJournalSteering:
    def test_record_and_recover(self, tmp_path):
        from repro.gateway.journal import SessionJournal

        path = str(tmp_path / "journal.json")
        j = SessionJournal(path)
        j.record_join("w0", 1, "alice", "tok")
        j.record_steering("w0", {"epoch": 1, "changes": {"u_inf": 2.0}})
        j.record_steering("w0", {"epoch": 2, "changes": {"taper": 0.5}})
        state = j.recovery_state("w0")
        assert [e["epoch"] for e in state["steering"]] == [1, 2]

        # A restarted gateway reloads the steering log from disk.
        j2 = SessionJournal(path)
        state2 = j2.recovery_state("w0")
        assert state2["steering"] == state["steering"]

    def test_recovery_state_default_has_empty_log(self):
        from repro.gateway.journal import SessionJournal

        assert SessionJournal().recovery_state("nope")["steering"] == []

    def test_old_journal_without_steering_loads(self, tmp_path):
        import json

        from repro.gateway.journal import SessionJournal

        path = tmp_path / "journal.json"
        path.write_text(
            json.dumps(
                {
                    "w0": {
                        "sessions": {},
                        "rakes": {},
                        "clock": None,
                        "tool_settings": None,
                    }
                }
            )
        )
        j = SessionJournal(str(path))
        assert j.recovery_state("w0")["steering"] == []
