"""The documentation is part of tier 1: links resolve, examples run.

Thin wrapper over ``tools/check_docs.py`` (which the ``docs`` CI job
also runs directly) so a dead relative link or a stale runnable example
fails the ordinary test suite, not just a separate lint step.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO / "tools"))
import check_docs  # noqa: E402


class TestCheckDocs:
    def test_repo_docs_pass(self, capsys):
        assert check_docs.main([]) == 0, capsys.readouterr().err

    def test_dead_link_detected(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no/such/file.md)\n")
        assert check_docs.main([str(bad)]) == 1

    def test_anchor_and_url_links_skipped(self, tmp_path):
        ok = tmp_path / "ok.md"
        ok.write_text(
            "[a](#section) [b](https://example.com/x) [c](mailto:x@y.z)\n"
        )
        assert check_docs.main([str(ok)]) == 0

    def test_failing_doctest_detected(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("```python doctest\n>>> 1 + 1\n3\n```\n")
        assert check_docs.main([str(bad)]) == 1

    def test_plain_python_blocks_not_executed(self, tmp_path):
        ok = tmp_path / "ok.md"
        ok.write_text("```python\nraise RuntimeError('prose only')\n```\n")
        assert check_docs.main([str(ok)]) == 0

    def test_links_inside_code_blocks_ignored(self, tmp_path):
        ok = tmp_path / "ok.md"
        ok.write_text("```\n[fake](not/a/real/path.md)\n```\n")
        assert check_docs.main([str(ok)]) == 0

    def test_cli_entrypoint(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_docs.py")],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "failures" in proc.stdout
