"""The tiered-cache cost model's arithmetic and fitting edge cases."""

import pytest

from repro.perf import CacheTierModel

MODEL = CacheTierModel(
    l1_seconds=1e-6, l2_seconds=1e-4, source_seconds=1e-1
)


class TestValidation:
    def test_rejects_negative_tier_costs(self):
        with pytest.raises(ValueError, match="l2_seconds"):
            CacheTierModel(1e-6, -1.0, 1e-1)

    @pytest.mark.parametrize("h1,h2", [(-0.1, 0.5), (0.5, 1.5), (2.0, 0.0)])
    def test_rejects_out_of_range_rates(self, h1, h2):
        with pytest.raises(ValueError, match="hit_rate"):
            MODEL.access_seconds(h1, h2)

    def test_effective_bandwidth_needs_positive_bytes(self):
        with pytest.raises(ValueError, match="timestep_nbytes"):
            MODEL.effective_bandwidth(0, 0.5, 0.5)

    def test_fleet_needs_at_least_one_session(self):
        with pytest.raises(ValueError, match="n_sessions"):
            CacheTierModel.fleet_l2_hit_rate(0)
        with pytest.raises(ValueError, match="n_sessions"):
            MODEL.aggregate_disk_factor(0)

    def test_max_sessions_validation(self):
        with pytest.raises(ValueError, match="frame_hz"):
            MODEL.max_sessions(0.0, 0.5)
        with pytest.raises(ValueError, match="utilization"):
            MODEL.max_sessions(10.0, 0.5, utilization=1.5)
        with pytest.raises(ValueError, match="l2_hit_rate"):
            MODEL.max_sessions(10.0, 1.01)


class TestAccessMath:
    def test_pure_mixes_price_one_tier(self):
        assert MODEL.access_seconds(1.0, 0.0) == MODEL.l1_seconds
        # h2 is conditional on an L1 miss, so (0, 1) is all-L2...
        assert MODEL.access_seconds(0.0, 1.0) == MODEL.l2_seconds
        assert MODEL.access_seconds(0.0, 0.0) == MODEL.source_seconds
        # ...and at h1=1 the L2 rate prices nothing at all.
        assert MODEL.access_seconds(1.0, 1.0) == MODEL.l1_seconds

    def test_mixed_rates_weight_the_ladder(self):
        got = MODEL.access_seconds(0.5, 0.5)
        want = 0.5 * 1e-6 + 0.25 * 1e-4 + 0.25 * 1e-1
        assert got == pytest.approx(want)

    def test_effective_bandwidth_grows_with_hit_rate(self):
        cold = MODEL.effective_bandwidth(1 << 20, 0.0, 0.0)
        warm = MODEL.effective_bandwidth(1 << 20, 0.9, 0.9)
        assert warm > cold
        assert cold == pytest.approx((1 << 20) / 0.1)

    def test_zero_cost_ladder_is_infinite_bandwidth(self):
        free = CacheTierModel(0.0, 0.0, 0.0)
        assert free.effective_bandwidth(1 << 20, 1.0, 0.0) == float("inf")


class TestFleetScale:
    def test_steady_state_hit_rate_is_n_minus_one_over_n(self):
        assert CacheTierModel.fleet_l2_hit_rate(1) == 0.0
        assert CacheTierModel.fleet_l2_hit_rate(4) == 0.75
        assert CacheTierModel.fleet_l2_hit_rate(32) == pytest.approx(31 / 32)

    def test_aggregate_factor_collapses_to_one(self):
        # n * (1 - (n-1)/n) == 1: the fleet reads the disk once, total.
        for n in (1, 2, 4, 8, 32):
            assert MODEL.aggregate_disk_factor(n) == pytest.approx(1.0)

    def test_aggregate_factor_without_sharing_is_n(self):
        assert MODEL.aggregate_disk_factor(8, l2_hit_rate=0.0) == 8

    def test_max_sessions_arithmetic(self):
        # 10 Hz, h2=0.75 -> 0.25 s of source per session-second;
        # 0.8 utilization sustains 3 sessions.
        assert MODEL.max_sessions(10.0, 0.75) == 3
        assert MODEL.max_sessions(10.0, 0.0) < MODEL.max_sessions(10.0, 0.9)

    def test_max_sessions_unbounded_when_source_never_hit(self):
        assert MODEL.max_sessions(10.0, 1.0) == 10**9
        free = CacheTierModel(1e-6, 1e-4, 0.0)
        assert free.max_sessions(10.0, 0.0) == 10**9


class TestFit:
    def test_pure_mixes_recover_the_constants(self):
        fitted = CacheTierModel.fit(
            [
                (1.0, 0.0, 0.0, 2e-6),
                (0.0, 1.0, 0.0, 3e-4),
                (0.0, 0.0, 1.0, 5e-2),
            ]
        )
        assert fitted.l1_seconds == pytest.approx(2e-6)
        assert fitted.l2_seconds == pytest.approx(3e-4)
        assert fitted.source_seconds == pytest.approx(5e-2)

    def test_mixed_rows_average_out(self):
        truth = CacheTierModel(1e-6, 1e-4, 1e-2)
        mixes = [
            (0.8, 0.1, 0.1),
            (0.1, 0.8, 0.1),
            (0.1, 0.1, 0.8),
            (0.4, 0.3, 0.3),
        ]
        rows = [
            (a, b, c, a * truth.l1_seconds + b * truth.l2_seconds
             + c * truth.source_seconds)
            for a, b, c in mixes
        ]
        fitted = CacheTierModel.fit(rows)
        assert fitted.source_seconds == pytest.approx(truth.source_seconds)

    def test_too_few_rows_rejected(self):
        with pytest.raises(ValueError, match="three sample"):
            CacheTierModel.fit([(1, 0, 0, 1e-6), (0, 1, 0, 1e-4)])

    def test_degenerate_mixes_rejected(self):
        rows = [(0.5, 0.5, 0.0, 1e-4)] * 3
        with pytest.raises(ValueError, match="degenerate"):
            CacheTierModel.fit(rows)

    def test_noise_clamps_to_physical_costs(self):
        # Noise that would drive the cheap tier negative stays at zero.
        fitted = CacheTierModel.fit(
            [
                (1.0, 0.0, 0.0, -1e-9),
                (0.0, 1.0, 0.0, 1e-4),
                (0.0, 0.0, 1.0, 1e-2),
            ]
        )
        assert fitted.l1_seconds == 0.0
