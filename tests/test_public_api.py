"""The public API surface: everything advertised must exist and import."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.util",
    "repro.grid",
    "repro.flow",
    "repro.tracers",
    "repro.dlib",
    "repro.netsim",
    "repro.diskio",
    "repro.vr",
    "repro.render",
    "repro.core",
    "repro.gateway",
    "repro.perf",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for entry in exported:
        assert hasattr(mod, entry), f"{name}.__all__ lists missing {entry!r}"


def test_version():
    import repro

    assert repro.__version__


def test_no_accidental_heavy_imports():
    """Importing repro must not pull in matplotlib/pandas/etc."""
    import subprocess
    import sys

    code = (
        "import sys, repro; "
        "bad = [m for m in ('matplotlib', 'pandas', 'vtk') if m in sys.modules]; "
        "print(','.join(bad))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    assert out.stdout.strip() == ""


def test_docstrings_on_public_classes():
    """Every public class and function in __all__ carries a docstring."""
    import inspect

    missing = []
    for name in PACKAGES:
        mod = importlib.import_module(name)
        for entry in getattr(mod, "__all__", []):
            obj = getattr(mod, entry)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{name}.{entry}")
    assert not missing, f"missing docstrings: {missing}"
