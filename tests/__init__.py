"""Shared test helpers — and the house rules for timing-sensitive tests.

De-flaking pattern (use it; do not sleep-and-assert)
----------------------------------------------------

A test that does ``time.sleep(0.15); assert nothing_happened()`` is
flaky twice over: on a loaded CI box the sleep may be too *short* for
the background thread to misbehave (false pass), and it always costs
wall time even when the system settles instantly.  The repo's rules:

1. **Wait on events, not on time.**  When the code under test exposes a
   completion signal (a ``threading.Event``, a condition variable, a
   returned future), block on that with a generous timeout.  The timeout
   is a failure detector, never the synchronization itself.
2. **Wait on progress counters for "nothing happened" claims.**  To
   assert a background thread *declined* to act, wait until one of its
   progress counters (e.g. ``FramePipeline.idle_cycles``) advances past
   a remembered value — proof the thread completed full evaluations of
   the new state — then assert the side effect is absent.  Use
   :func:`wait_until` below.
3. **Drive clocks, don't chase them.**  Time-dependent logic takes an
   injectable ``time_fn``/``clock`` everywhere in this repo; tests pass
   a fake (``clock = {"now": 0.0}; time_fn=lambda: clock["now"]``) and
   advance it explicitly (see ``test_core_timectrl.py``).
"""

from __future__ import annotations

import time


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.005):
    """Poll ``predicate`` until it returns a truthy value; return it.

    Raises ``AssertionError`` after ``timeout`` seconds.  The timeout is
    deliberately generous — it only bounds a genuinely broken test, it
    does not pace a healthy one (a healthy one returns on the first few
    polls).
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise AssertionError(
                f"condition {predicate!r} not met within {timeout}s"
            )
        time.sleep(interval)
