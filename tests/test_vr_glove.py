"""Tests for the DataGlove, tracker, gestures, motion, and desktop input."""

import numpy as np
import pytest

from repro.util.transforms import compose, rotation_z, translation
from repro.vr import (
    Calibration,
    DataGlove,
    DesktopInput,
    Gesture,
    GestureRecognizer,
    Keyframe,
    MotionScript,
    MouseState,
    PolhemusTracker,
    classify_bends,
)
from repro.vr.gestures import CANONICAL_BENDS


def pose_at(x, y, z):
    return translation([x, y, z])


class TestPolhemusTracker:
    def test_noise_perturbs_position(self):
        t = PolhemusTracker(noise_std=0.01, seed=1)
        sensed, ok = t.read(pose_at(0.5, 0.0, 0.0))
        assert ok
        assert not np.allclose(sensed[:3, 3], [0.5, 0.0, 0.0], atol=1e-6)
        assert np.allclose(sensed[:3, 3], [0.5, 0.0, 0.0], atol=0.1)

    def test_noise_free_tracker(self):
        t = PolhemusTracker(noise_std=0.0)
        sensed, ok = t.read(pose_at(0.5, 0.2, 0.1))
        np.testing.assert_allclose(sensed, pose_at(0.5, 0.2, 0.1))

    def test_orientation_untouched(self):
        t = PolhemusTracker(noise_std=0.01, seed=2)
        pose = compose(translation([0.3, 0, 0]), rotation_z(0.7))
        sensed, _ = t.read(pose)
        np.testing.assert_allclose(sensed[:3, :3], pose[:3, :3])

    def test_out_of_range_drops_out(self):
        t = PolhemusTracker(noise_std=0.0, max_range=1.0)
        t.read(pose_at(0.5, 0.0, 0.0))
        sensed, ok = t.read(pose_at(5.0, 0.0, 0.0))
        assert not ok
        np.testing.assert_allclose(sensed[:3, 3], [0.5, 0.0, 0.0])

    def test_noise_grows_with_distance(self):
        errors = []
        for d in (0.1, 1.4):
            t = PolhemusTracker(noise_std=0.01, max_range=1.5, seed=3)
            errs = [
                np.linalg.norm(t.read(pose_at(d, 0, 0))[0][:3, 3] - [d, 0, 0])
                for _ in range(200)
            ]
            errors.append(np.mean(errs))
        assert errors[1] > errors[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PolhemusTracker(noise_std=-1)
        with pytest.raises(ValueError):
            PolhemusTracker(max_range=0)
        with pytest.raises(ValueError):
            PolhemusTracker().read(np.eye(3))


class TestCalibration:
    def test_identity_default(self):
        c = Calibration()
        np.testing.assert_allclose(c.apply(np.full(10, 0.25)), 0.25)

    def test_fit_maps_open_to_zero_fist_to_one(self):
        open_s = np.full(10, 0.2)
        fist_s = np.full(10, 0.9)
        c = Calibration.fit(open_s, fist_s)
        np.testing.assert_allclose(c.apply(open_s), 0.0)
        np.testing.assert_allclose(c.apply(fist_s), 1.0)
        np.testing.assert_allclose(c.apply(np.full(10, 0.55)), 0.5)

    def test_clipping(self):
        c = Calibration.fit(np.full(10, 0.2), np.full(10, 0.8))
        np.testing.assert_allclose(c.apply(np.full(10, 0.0)), 0.0)
        np.testing.assert_allclose(c.apply(np.full(10, 1.0)), 1.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Calibration.fit(np.full(10, 0.5), np.full(10, 0.5))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Calibration(raw_open=np.zeros(5), raw_fist=np.ones(5))
        with pytest.raises(ValueError):
            Calibration().apply(np.zeros(5))


class TestDataGlove:
    def test_sample_pipeline(self):
        glove = DataGlove(
            tracker=PolhemusTracker(noise_std=0.0),
            calibration=Calibration.fit(np.full(10, 0.1), np.full(10, 0.9)),
        )
        sample = glove.read(pose_at(0.3, 0.1, 0.2), np.full(10, 0.9))
        assert sample.in_range
        np.testing.assert_allclose(sample.position, [0.3, 0.1, 0.2])
        np.testing.assert_allclose(sample.bends, 1.0)


class TestGestures:
    def test_canonical_gestures(self):
        assert classify_bends(CANONICAL_BENDS[Gesture.OPEN]) is Gesture.OPEN
        assert classify_bends(CANONICAL_BENDS[Gesture.FIST]) is Gesture.FIST
        assert classify_bends(CANONICAL_BENDS[Gesture.POINT]) is Gesture.POINT

    def test_ambiguous_is_unknown(self):
        assert classify_bends(np.full(10, 0.5)) is Gesture.UNKNOWN

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            classify_bends(np.zeros(10), bent=0.3, extended=0.7)
        with pytest.raises(ValueError):
            classify_bends(np.zeros(5))

    def test_recognizer_requires_hold(self):
        r = GestureRecognizer(hold_frames=2)
        assert r.update(CANONICAL_BENDS[Gesture.FIST]) is Gesture.OPEN
        assert r.update(CANONICAL_BENDS[Gesture.FIST]) is Gesture.FIST

    def test_unknown_never_replaces(self):
        r = GestureRecognizer(hold_frames=1)
        r.update(CANONICAL_BENDS[Gesture.FIST])
        for _ in range(5):
            assert r.update(np.full(10, 0.5)) is Gesture.FIST

    def test_flicker_suppressed(self):
        """Alternating single frames never switch the gesture."""
        r = GestureRecognizer(hold_frames=2)
        for _ in range(6):
            assert r.update(CANONICAL_BENDS[Gesture.FIST]) is Gesture.OPEN
            assert r.update(CANONICAL_BENDS[Gesture.OPEN]) is Gesture.OPEN

    def test_reset(self):
        r = GestureRecognizer(hold_frames=1)
        r.update(CANONICAL_BENDS[Gesture.FIST])
        r.reset()
        assert r.current is Gesture.OPEN

    def test_validation(self):
        with pytest.raises(ValueError):
            GestureRecognizer(hold_frames=0)


class TestMotionScript:
    def make_script(self):
        return MotionScript(
            [
                Keyframe(0.0, hand_position=(0, 0, 0)),
                Keyframe(1.0, hand_position=(1, 0, 0), hand_yaw=np.pi / 2),
                Keyframe(3.0, hand_position=(1, 2, 0)),
            ]
        )

    def test_interpolation(self):
        s = self.make_script()
        np.testing.assert_allclose(s.hand_pose(0.5)[:3, 3], [0.5, 0, 0])
        np.testing.assert_allclose(s.hand_pose(2.0)[:3, 3], [1, 1, 0])

    def test_clamping_outside_range(self):
        s = self.make_script()
        np.testing.assert_allclose(s.hand_pose(-1.0)[:3, 3], [0, 0, 0])
        np.testing.assert_allclose(s.hand_pose(99.0)[:3, 3], [1, 2, 0])

    def test_bends_snap_not_morph(self):
        s = MotionScript(
            [
                Keyframe(0.0, bends=tuple(CANONICAL_BENDS[Gesture.OPEN])),
                Keyframe(1.0, bends=tuple(CANONICAL_BENDS[Gesture.FIST])),
            ]
        )
        assert classify_bends(s.bends(0.2)) is Gesture.OPEN
        assert classify_bends(s.bends(0.8)) is Gesture.FIST

    def test_boom_angles_interpolate(self):
        s = MotionScript(
            [
                Keyframe(0.0, boom_angles=(0, 0, 0, 0, 0, 0)),
                Keyframe(2.0, boom_angles=(1.0, 0, 0, 0, 0, 0)),
            ]
        )
        np.testing.assert_allclose(s.boom_angles(1.0)[0], 0.5)

    def test_sample_times(self):
        s = self.make_script()
        times = s.sample_times(fps=10)
        assert times[0] == 0.0 and times[-1] == pytest.approx(3.0)
        assert len(times) == 31

    def test_validation(self):
        with pytest.raises(ValueError):
            MotionScript([])
        with pytest.raises(ValueError):
            MotionScript([Keyframe(0.0), Keyframe(0.0)])
        with pytest.raises(ValueError):
            Keyframe(0.0, bends=(0.0,) * 5)
        with pytest.raises(ValueError):
            Keyframe(0.0, boom_angles=(0.0,) * 5)
        with pytest.raises(ValueError):
            self.make_script().sample_times(0)


class TestDesktopInput:
    def test_center_maps_to_volume_center(self):
        d = DesktopInput()
        pos = d.hand_position(MouseState(0.5, 0.5))
        np.testing.assert_allclose(pos, [0.0, 0.0, 0.0])

    def test_corners(self):
        d = DesktopInput()
        np.testing.assert_allclose(
            d.hand_position(MouseState(0.0, 0.0)), [-1.0, 0.0, -1.0]
        )
        np.testing.assert_allclose(
            d.hand_position(MouseState(1.0, 1.0)), [1.0, 0.0, 1.0]
        )

    def test_wheel_controls_depth(self):
        d = DesktopInput(wheel_step=0.1)
        near = d.hand_position(MouseState(0.5, 0.5, wheel=-5.0))
        far = d.hand_position(MouseState(0.5, 0.5, wheel=5.0))
        assert near[1] == pytest.approx(-1.0)
        assert far[1] == pytest.approx(1.0)

    def test_buttons_to_gestures(self):
        d = DesktopInput()
        assert d.gesture(MouseState(0.5, 0.5, left=True)) is Gesture.FIST
        assert d.gesture(MouseState(0.5, 0.5, right=True)) is Gesture.POINT
        assert d.gesture(MouseState(0.5, 0.5)) is Gesture.OPEN

    def test_validation(self):
        with pytest.raises(ValueError):
            MouseState(1.5, 0.5)
        with pytest.raises(ValueError):
            DesktopInput(volume_lo=(1, 1, 1), volume_hi=(0, 0, 0))
        with pytest.raises(ValueError):
            DesktopInput(wheel_step=0)
