"""Tier 2 of the cache ladder: the shared-memory timestep segment.

Covers the seqlock/pin protocol single-process (validation, LRU victim
choice, torn slots, pinned-slot write-around, dead-reader reclaim), then
hammers one segment from several *processes* under both ``spawn`` and
``fork`` start methods, and finally SIGKILLs a writer mid-operation to
prove the crash-safety story: the kernel drops the flock, the torn slot
is reclaimed by the next writer, dead pins don't wedge eviction, and the
segment unlinks cleanly (docs/caching.md).
"""

import multiprocessing
import os
import random
import time
from itertools import count

import numpy as np
import pytest

from repro.diskio import shmcache
from repro.diskio.cache import decoded_timestep_nbytes
from repro.diskio.shmcache import SharedTimestepCache, attach_segment
from repro.flow import tapered_cylinder_dataset
from repro.netsim import ProcessFaults

SHAPE = (4, 3, 2)
_seq = count(1)


def _name() -> str:
    return f"wt-shmtest-{os.getpid()}-{next(_seq)}"


def _fill(shape, t: int) -> np.ndarray:
    """A timestep-specific pattern where any partial write is detectable."""
    n = int(np.prod(shape))
    return (((np.arange(n, dtype=np.float64) % 97.0) + 1.0) * (t + 1)).reshape(
        shape
    )


@pytest.fixture
def seg():
    cache = SharedTimestepCache(_name(), SHAPE, slots=3, create="always")
    yield cache
    cache.close()


class TestSegmentValidation:
    def test_attach_missing_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            SharedTimestepCache(_name(), SHAPE, create="never")

    def test_create_always_collides(self, seg):
        with pytest.raises(FileExistsError):
            SharedTimestepCache(seg.name, SHAPE, slots=3, create="always")

    def test_bad_create_mode(self):
        with pytest.raises(ValueError, match="create"):
            SharedTimestepCache(_name(), SHAPE, create="maybe")

    def test_geometry_validation(self):
        with pytest.raises(ValueError, match="slot"):
            SharedTimestepCache(_name(), SHAPE, slots=0)
        with pytest.raises(ValueError, match="reader row"):
            SharedTimestepCache(_name(), SHAPE, reader_rows=0)

    def test_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        name = _name()
        raw = shared_memory.SharedMemory(name=name, create=True, size=4096)
        try:
            with pytest.raises(ValueError, match="not a timestep cache"):
                SharedTimestepCache(name, SHAPE, create="never")
        finally:
            raw.close()
            raw.unlink()

    def test_rejects_slot_size_mismatch(self, seg):
        with pytest.raises(ValueError, match="byte slots"):
            SharedTimestepCache(seg.name, (8, 8, 8), create="never")

    def test_rejects_different_dataset(self):
        name = _name()
        owner = SharedTimestepCache(
            name, SHAPE, dataset_id="aabbccdd00112233", create="always"
        )
        try:
            with pytest.raises(ValueError, match="different dataset"):
                SharedTimestepCache(
                    name, SHAPE, dataset_id="ffeeddcc00112233", create="never"
                )
        finally:
            owner.close()

    def test_for_dataset_geometry(self):
        dataset = tapered_cylinder_dataset(
            shape=(6, 6, 4), n_timesteps=3, dt=0.25
        )
        cache = SharedTimestepCache.for_dataset(
            dataset, name=_name(), slots=2, create="always"
        )
        try:
            assert cache.slot_shape == tuple(dataset.grid.shape) + (3,)
            # Slots hold the *decoded* float64 field, not the packed disk
            # representation.
            assert cache.slot_nbytes == decoded_timestep_nbytes(dataset)
        finally:
            cache.close()


class TestProtocol:
    def test_get_miss_then_put_then_hit(self, seg):
        assert seg.get(0) is None
        assert seg.stats.misses == 1
        assert seg.put(0, _fill(SHAPE, 0))
        out = seg.get(0)
        np.testing.assert_array_equal(out, _fill(SHAPE, 0))
        assert seg.stats.hits == 1

    def test_reads_are_readonly_private_copies(self, seg):
        seg.put(0, _fill(SHAPE, 0))
        a, b = seg.get(0), seg.get(0)
        assert not a.flags.writeable
        assert a is not b
        with pytest.raises(ValueError):
            a[0, 0, 0] = 99.0

    def test_duplicate_put_is_skipped(self, seg):
        assert seg.put(0, _fill(SHAPE, 0))
        assert not seg.put(0, _fill(SHAPE, 0))
        assert seg.resident_timesteps == [0]

    def test_put_rejects_wrong_shape(self, seg):
        with pytest.raises(ValueError, match="slot shape"):
            seg.put(0, np.zeros((2, 2)))

    def test_lru_victim_is_least_recently_touched(self, seg):
        for t in range(3):
            seg.put(t, _fill(SHAPE, t))
        seg.get(0)  # touch t=0 so t=1 becomes the LRU victim
        seg.put(3, _fill(SHAPE, 3))
        assert seg.resident_timesteps == [0, 2, 3]
        assert seg.stats.evictions == 1

    def test_torn_slot_is_preferred_victim(self, seg):
        for t in range(3):
            seg.put(t, _fill(SHAPE, t))
        # A crashed writer leaves seq odd; the slot is unreadable and
        # must be recycled first, not a healthy LRU slot.
        seg._meta[1, shmcache._M_SEQ] += 1
        assert seg.put(7, _fill(SHAPE, 7))
        assert seg.reclaimed == 1
        assert seg.resident_timesteps == [0, 2, 7]
        np.testing.assert_array_equal(seg.get(7), _fill(SHAPE, 7))

    def test_torn_read_is_discarded(self, seg):
        seg.put(0, _fill(SHAPE, 0))
        real = seg._slot_array

        def racing_slot_array(slot):
            # A writer replaces the slot between pin and re-validation.
            out = np.array(real(slot))
            seg._meta[slot, shmcache._M_SEQ] += 2
            seg._meta[slot, shmcache._M_TIMESTEP] = 5
            return out

        seg._slot_array = racing_slot_array
        assert seg.get(0) is None  # torn copy never reaches the caller
        assert seg.torn_reads == 1
        assert seg.stats.misses == 1

    def test_every_victim_pinned_means_write_around(self, seg):
        for t in range(3):
            seg.put(t, _fill(SHAPE, t))
        pins = [seg._pin(s, int(seg._meta[s, shmcache._M_SEQ])) for s in range(3)]
        assert all(p >= 0 for p in pins)
        assert not seg.put(9, _fill(SHAPE, 9))
        assert seg.bypasses == 1
        for p in pins:
            seg._unpin(p)
        assert seg.put(9, _fill(SHAPE, 9))

    def test_dead_reader_pin_does_not_block_eviction(self, seg):
        for t in range(3):
            seg.put(t, _fill(SHAPE, t))
        # A reader that died mid-read leaves a pin behind; os.kill(pid, 0)
        # unmasks it and the row is reclaimed instead of honored.
        proc = multiprocessing.get_context().Process(target=lambda: None)
        proc.start()
        proc.join()
        seg._readers[1, 0] = proc.pid
        seg._readers[1, 1] = 0  # dead pid pins slot 0
        assert seg.put(9, _fill(SHAPE, 9))
        assert seg.reclaimed == 1
        assert int(seg._readers[1, 0]) == 0

    def test_snapshot_and_close_unlink(self):
        seg = SharedTimestepCache(_name(), SHAPE, slots=2, create="always")
        seg.put(0, _fill(SHAPE, 0))
        snap = seg.snapshot()
        assert snap["owner"] and snap["resident"] == [0]
        for key in ("bypasses", "torn_reads", "reclaimed", "hits", "misses"):
            assert key in snap
        seg.close()
        with pytest.raises(FileNotFoundError):
            attach_segment(seg.name)
        assert not os.path.exists(seg._lock_path)


# -- multi-process property test ----------------------------------------------

N_WORKERS = 3
TIMESTEPS = 6
ROUNDS = 150
HAMMER_SLOTS = 4  # < TIMESTEPS: constant eviction pressure


def _hammer_worker(name, seed, q):
    """Random get/put storm; reports counters and any corruption seen."""
    seg = SharedTimestepCache(name, SHAPE, slots=HAMMER_SLOTS, create="never")
    rng = random.Random(seed)
    hits = misses = puts = corrupt = 0
    try:
        for _ in range(ROUNDS):
            t = rng.randrange(TIMESTEPS)
            out = seg.get(t)
            if out is None:
                misses += 1
                if seg.put(t, _fill(SHAPE, t)):
                    puts += 1
            else:
                hits += 1
                if not np.array_equal(out, _fill(SHAPE, t)):
                    corrupt += 1
        q.put(
            {
                "pid": os.getpid(),
                "hits": hits,
                "misses": misses,
                "puts": puts,
                "corrupt": corrupt,
                "stat_hits": seg.stats.hits,
                "stat_misses": seg.stats.misses,
                "torn_reads": seg.torn_reads,
            }
        )
    finally:
        seg.close()


@pytest.mark.parametrize(
    "method",
    [
        m
        for m in ("fork", "spawn")
        if m in multiprocessing.get_all_start_methods()
    ],
)
def test_concurrent_hit_miss_eviction_property(method):
    """N processes hammer one segment: counters reconcile, data never tears."""
    ctx = multiprocessing.get_context(method)
    owner = SharedTimestepCache(
        _name(), SHAPE, slots=HAMMER_SLOTS, create="always"
    )
    try:
        q = ctx.Queue()
        procs = [
            ctx.Process(
                target=_hammer_worker, args=(owner.name, 100 + i, q), daemon=True
            )
            for i in range(N_WORKERS)
        ]
        for p in procs:
            p.start()
        results = [q.get(timeout=60) for _ in range(N_WORKERS)]
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0

        for r in results:
            # Every access resolved to exactly one outcome, and no read
            # ever surfaced a torn or foreign payload.
            assert r["hits"] + r["misses"] == ROUNDS
            assert r["corrupt"] == 0
            assert r["stat_hits"] == r["hits"]
            # Tier stats count the seqlock-level misses too (a torn
            # retry that ends in a miss is still one API-level miss).
            assert r["stat_misses"] == r["misses"]
        assert sum(r["hits"] for r in results) > 0
        assert sum(r["puts"] for r in results) >= TIMESTEPS - HAMMER_SLOTS + 1

        # The segment survives the storm in a coherent state: every
        # resident slot is stable (even seq) and reads back exactly.
        resident = owner.resident_timesteps
        assert resident == sorted(set(resident))
        assert all(0 <= t < TIMESTEPS for t in resident)
        for t in resident:
            np.testing.assert_array_equal(owner.get(t), _fill(SHAPE, t))
        assert len(resident) <= HAMMER_SLOTS
    finally:
        owner.close()


# -- SIGKILL crash safety ------------------------------------------------------


def _crash_victim(name, ready):
    """Pin a slot, start a write, then wedge while holding the flock."""
    seg = SharedTimestepCache(name, SHAPE, slots=2, create="never")
    seg._pin(0, int(seg._meta[0, shmcache._M_SEQ]))
    seg._acquire_writer()
    seg._meta[1, shmcache._M_SEQ] += 1  # odd: write in progress
    ready.set()
    time.sleep(60)  # SIGKILLed long before this returns


def test_sigkilled_writer_cannot_wedge_the_segment():
    """Kill a writer mid-put: flock drops, torn slot recycles, no leak."""
    import fcntl

    ctx = multiprocessing.get_context()
    owner = SharedTimestepCache(_name(), SHAPE, slots=2, create="always")
    try:
        owner.put(0, _fill(SHAPE, 0))
        owner.put(1, _fill(SHAPE, 1))
        ready = ctx.Event()
        proc = ctx.Process(
            target=_crash_victim, args=(owner.name, ready), daemon=True
        )
        proc.start()
        assert ready.wait(timeout=30)

        faults = ProcessFaults(seed=0)
        faults.kill(proc)
        proc.join(timeout=30)
        assert faults.stats.kills == 1

        # The kernel released the dead writer's flock: the sidecar lock
        # is immediately acquirable, non-blocking.
        with open(owner._lock_path, "a+b") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

        # Slot 1 was left torn (odd seq): it is the preferred victim and
        # is realigned, not served.
        assert owner.get(1) is None
        assert owner.put(2, _fill(SHAPE, 2))
        assert owner.reclaimed >= 1
        assert owner.resident_timesteps == [0, 2]

        # The dead reader's pin on slot 0 is unmasked by the liveness
        # probe, so the next eviction proceeds instead of bypassing.
        assert owner.put(3, _fill(SHAPE, 3))
        assert owner.bypasses == 0
        for t in owner.resident_timesteps:
            np.testing.assert_array_equal(owner.get(t), _fill(SHAPE, t))
    finally:
        owner.close()
    # No leak: the segment and its lock sidecar are gone.
    with pytest.raises(FileNotFoundError):
        attach_segment(owner.name)
    assert not os.path.exists(owner._lock_path)
