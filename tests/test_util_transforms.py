"""Unit + property tests for repro.util.transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.util import (
    IDENTITY,
    MatrixStack,
    compose,
    invert_rigid,
    is_rigid,
    look_at,
    rotation_about_axis,
    rotation_x,
    rotation_y,
    rotation_z,
    transform_points,
    transform_vectors,
    translation,
)

finite_floats = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)
angles = st.floats(-2 * np.pi, 2 * np.pi, allow_nan=False)
vec3 = arrays(np.float64, (3,), elements=finite_floats)


def random_rigid(rng):
    m = compose(
        translation(rng.uniform(-5, 5, 3)),
        rotation_x(rng.uniform(-np.pi, np.pi)),
        rotation_y(rng.uniform(-np.pi, np.pi)),
        rotation_z(rng.uniform(-np.pi, np.pi)),
    )
    return m


class TestConstructors:
    def test_identity_is_readonly(self):
        with pytest.raises(ValueError):
            IDENTITY[0, 0] = 2.0

    def test_translation_moves_points(self):
        m = translation([1.0, 2.0, 3.0])
        p = transform_points(m, [0.0, 0.0, 0.0])
        np.testing.assert_allclose(p, [1.0, 2.0, 3.0])

    def test_translation_shape_check(self):
        with pytest.raises(ValueError):
            translation([1.0, 2.0])

    def test_rotation_z_quarter_turn(self):
        m = rotation_z(np.pi / 2)
        p = transform_points(m, [1.0, 0.0, 0.0])
        np.testing.assert_allclose(p, [0.0, 1.0, 0.0], atol=1e-12)

    def test_rotation_x_quarter_turn(self):
        m = rotation_x(np.pi / 2)
        p = transform_points(m, [0.0, 1.0, 0.0])
        np.testing.assert_allclose(p, [0.0, 0.0, 1.0], atol=1e-12)

    def test_rotation_y_quarter_turn(self):
        m = rotation_y(np.pi / 2)
        p = transform_points(m, [0.0, 0.0, 1.0])
        np.testing.assert_allclose(p, [1.0, 0.0, 0.0], atol=1e-12)

    def test_axis_rotation_matches_z(self):
        np.testing.assert_allclose(
            rotation_about_axis([0, 0, 1], 0.7), rotation_z(0.7), atol=1e-12
        )

    def test_axis_rotation_zero_axis_raises(self):
        with pytest.raises(ValueError):
            rotation_about_axis([0, 0, 0], 1.0)


class TestAlgebra:
    @given(angles, angles)
    def test_rotations_compose_additively(self, a, b):
        np.testing.assert_allclose(
            compose(rotation_z(a), rotation_z(b)), rotation_z(a + b), atol=1e-9
        )

    def test_compose_empty_is_identity(self):
        np.testing.assert_allclose(compose(), np.eye(4))

    def test_compose_order(self):
        # compose(A, B) applies B first.
        A = translation([1, 0, 0])
        B = rotation_z(np.pi / 2)
        p = transform_points(compose(A, B), [1.0, 0.0, 0.0])
        np.testing.assert_allclose(p, [1.0, 1.0, 0.0], atol=1e-12)

    def test_invert_rigid_roundtrip(self):
        rng = np.random.default_rng(42)
        for _ in range(20):
            m = random_rigid(rng)
            np.testing.assert_allclose(m @ invert_rigid(m), np.eye(4), atol=1e-12)

    def test_is_rigid_accepts_rigid(self):
        rng = np.random.default_rng(0)
        assert is_rigid(random_rigid(rng))

    def test_is_rigid_rejects_scale(self):
        m = np.diag([2.0, 1.0, 1.0, 1.0])
        assert not is_rigid(m)

    def test_is_rigid_rejects_reflection(self):
        m = np.diag([-1.0, 1.0, 1.0, 1.0])
        assert not is_rigid(m)

    @given(vec3, angles)
    @settings(max_examples=50)
    def test_rotation_preserves_norm(self, v, a):
        m = rotation_about_axis([1.0, 2.0, -0.5], a)
        out = transform_vectors(m, v)
        np.testing.assert_allclose(
            np.linalg.norm(out), np.linalg.norm(v), atol=1e-9 * (1 + np.linalg.norm(v))
        )


class TestTransformPoints:
    def test_batched_points(self):
        m = translation([1.0, 0.0, 0.0])
        pts = np.zeros((5, 3))
        out = transform_points(m, pts)
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out[:, 0], 1.0)

    def test_vectors_ignore_translation(self):
        m = translation([9.0, 9.0, 9.0])
        np.testing.assert_allclose(
            transform_vectors(m, [1.0, 0.0, 0.0]), [1.0, 0.0, 0.0]
        )

    def test_bad_trailing_dim(self):
        with pytest.raises(ValueError):
            transform_points(np.eye(4), np.zeros((3, 2)))


class TestLookAt:
    def test_camera_at_eye(self):
        m = look_at([5.0, 0.0, 0.0], [0.0, 0.0, 0.0])
        np.testing.assert_allclose(m[:3, 3], [5.0, 0.0, 0.0])

    def test_forward_is_minus_z(self):
        m = look_at([5.0, 0.0, 0.0], [0.0, 0.0, 0.0])
        # Camera -Z axis points at the target.
        np.testing.assert_allclose(-m[:3, 2], [-1.0, 0.0, 0.0], atol=1e-12)

    def test_result_is_rigid(self):
        m = look_at([1.0, 2.0, 3.0], [0.0, -1.0, 0.5], up=[0, 0, 1])
        assert is_rigid(m)

    def test_degenerate_eye_raises(self):
        with pytest.raises(ValueError):
            look_at([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])

    def test_parallel_up_raises(self):
        with pytest.raises(ValueError):
            look_at([0.0, 0.0, 5.0], [0.0, 0.0, 0.0], up=[0, 0, 1])


class TestMatrixStack:
    def test_push_pop_restores(self):
        s = MatrixStack()
        s.mult(translation([1, 2, 3]))
        s.push()
        s.mult(rotation_z(1.0))
        s.pop()
        np.testing.assert_allclose(s.top, translation([1, 2, 3]))

    def test_cannot_pop_root(self):
        s = MatrixStack()
        with pytest.raises(IndexError):
            s.pop()

    def test_load_replaces(self):
        s = MatrixStack()
        s.mult(translation([1, 0, 0]))
        s.load(np.eye(4))
        np.testing.assert_allclose(s.top, np.eye(4))

    def test_identity_resets_top_only(self):
        s = MatrixStack()
        s.mult(translation([1, 0, 0]))
        s.push()
        s.identity()
        np.testing.assert_allclose(s.top, np.eye(4))
        s.pop()
        np.testing.assert_allclose(s.top, translation([1, 0, 0]))

    def test_transform_uses_top(self):
        s = MatrixStack()
        s.mult(translation([0, 0, 7.0]))
        np.testing.assert_allclose(s.transform([0.0, 0.0, 0.0]), [0, 0, 7.0])

    def test_mult_concatenates_like_paper(self):
        # Section 3: invert head matrix, concatenate onto the stack.
        head = compose(translation([0, 0, 2.0]), rotation_y(0.3))
        s = MatrixStack()
        s.mult(invert_rigid(head))
        # A point at the head position maps to the origin of eye space.
        np.testing.assert_allclose(
            s.transform(head[:3, 3]), [0.0, 0.0, 0.0], atol=1e-12
        )
