"""Tests for the FTLE diagnostic."""

import numpy as np
import pytest

from repro.flow import DoubleGyre, MemoryDataset, RigidRotation, UniformFlow, sample_on_grid
from repro.grid import cartesian_grid
from repro.tracers.ftle import compute_ftle


def make_dataset(field, shape=(33, 17, 3), lo=(0, 0, 0), hi=(2, 1, 0.2),
                 n_times=21, dt=0.5):
    grid = cartesian_grid(shape, lo=lo, hi=hi)
    vel = sample_on_grid(field, grid, np.arange(n_times) * dt, dtype=np.float64)
    return MemoryDataset(grid, vel, dt=dt)


class TestFTLEBasics:
    def test_uniform_flow_zero_stretching(self):
        ds = make_dataset(UniformFlow([0.01, 0.0, 0.0]), n_times=6)
        res = compute_ftle(ds, 0, resolution=(12, 8))
        finite = res.values[np.isfinite(res.values)]
        assert finite.size > 0
        np.testing.assert_allclose(finite, 0.0, atol=1e-6)

    def test_rigid_rotation_zero_stretching(self):
        """Rotation deforms nothing: FTLE ~ 0 up to integrator error."""
        ds = make_dataset(
            RigidRotation(omega=[0, 0, 0.2], center=[1.0, 0.5, 0]),
            n_times=6,
        )
        res = compute_ftle(ds, 0, resolution=(12, 8), margin=0.3)
        finite = res.values[np.isfinite(res.values)]
        assert finite.size > 0
        assert np.abs(finite).max() < 0.05

    def test_double_gyre_has_positive_ridges(self):
        """The double gyre's separatrix shows up as an FTLE ridge."""
        ds = make_dataset(DoubleGyre(), n_times=21, dt=0.5)
        res = compute_ftle(ds, 0, resolution=(32, 16))
        finite = res.values[np.isfinite(res.values)]
        assert finite.size > 0
        # Ridge values clearly above the field median (strong contrast).
        assert finite.max() > 2.0 * max(np.median(finite), 1e-6)
        ridges = res.ridge_mask(90.0)
        assert 0 < ridges.sum() < 0.25 * ridges.size

    def test_window_time_reported(self):
        ds = make_dataset(UniformFlow([0.01, 0, 0]), n_times=6)
        res = compute_ftle(ds, 0, resolution=(8, 6), window_steps=4)
        assert res.window_time == pytest.approx(4 * ds.dt)

    def test_dead_particles_masked(self):
        """Seeds advected out of the domain produce NaN sites; the
        upstream half of the lattice survives."""
        ds = make_dataset(UniformFlow([0.2, 0.0, 0.0]), n_times=10, dt=0.5)
        res = compute_ftle(ds, 0, resolution=(12, 8), margin=0.05)
        assert np.isnan(res.values).any()
        assert np.isfinite(res.values).any()

    def test_validation(self):
        ds = make_dataset(UniformFlow([0.01, 0, 0]), n_times=4)
        with pytest.raises(ValueError):
            compute_ftle(ds, 0, axes=(0, 0))
        with pytest.raises(ValueError):
            compute_ftle(ds, 0, resolution=(2, 8))
        with pytest.raises(ValueError):
            compute_ftle(ds, 0, margin=0.6)
        with pytest.raises(ValueError):
            compute_ftle(ds, 3, window_steps=None)  # no steps left

    def test_empty_ridge_mask_when_all_nan(self):
        from repro.tracers.ftle import FTLEResult

        res = FTLEResult(np.full((4, 4), np.nan), np.zeros((4, 4, 3)), 1.0)
        assert not res.ridge_mask().any()
