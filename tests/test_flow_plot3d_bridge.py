"""Tests for the PLOT3D <-> dataset bridge."""

import numpy as np
import pytest

from repro.flow import MemoryDataset, UniformFlow, sample_on_grid
from repro.flow.plot3d import load_dataset_plot3d, save_dataset_plot3d, write_grid
from repro.grid import cartesian_grid, cylindrical_grid


@pytest.fixture()
def dataset():
    grid = cylindrical_grid((6, 9, 4))
    vel = sample_on_grid(UniformFlow([1.0, 0.5, 0.0]), grid, np.arange(3) * 0.2)
    return MemoryDataset(grid, vel, dt=0.2)


class TestBridge:
    def test_roundtrip(self, dataset, tmp_path):
        d = save_dataset_plot3d(dataset, tmp_path / "p3d")
        back = load_dataset_plot3d(d)
        assert back.n_timesteps == dataset.n_timesteps
        assert back.dt == pytest.approx(dataset.dt)
        np.testing.assert_allclose(back.grid.xyz, dataset.grid.xyz, atol=1e-6)
        for t in range(3):
            np.testing.assert_allclose(
                back.velocity(t), dataset.velocity(t), atol=1e-6
            )

    def test_file_layout(self, dataset, tmp_path):
        d = save_dataset_plot3d(dataset, tmp_path / "p3d")
        assert (d / "grid.x").exists()
        assert sorted(f.name for f in d.glob("velocity_*.f")) == [
            "velocity_0000.f",
            "velocity_0001.f",
            "velocity_0002.f",
        ]

    def test_dt_override(self, dataset, tmp_path):
        d = save_dataset_plot3d(dataset, tmp_path / "p3d")
        back = load_dataset_plot3d(d, dt=9.0)
        assert back.dt == 9.0

    def test_missing_velocity_files(self, tmp_path):
        d = tmp_path / "empty"
        d.mkdir()
        write_grid(d / "grid.x", cartesian_grid((3, 3, 3)))
        with pytest.raises(ValueError):
            load_dataset_plot3d(d)

    def test_multizone_grid_rejected(self, dataset, tmp_path):
        d = save_dataset_plot3d(dataset, tmp_path / "p3d")
        write_grid(d / "grid.x", [dataset.grid, cartesian_grid((3, 3, 3))])
        with pytest.raises(ValueError):
            load_dataset_plot3d(d)

    def test_loaded_dataset_drives_tools(self, dataset, tmp_path):
        """A PLOT3D-loaded dataset works through the full tracer path."""
        from repro.tracers import compute_streamlines

        back = load_dataset_plot3d(save_dataset_plot3d(dataset, tmp_path / "p"))
        seeds = np.array([[2.0, 4.0, 1.5]])
        res = compute_streamlines(back, 0, seeds, n_steps=10, dt=0.05)
        assert res.lengths[0] >= 2
