"""Tests for the 2-D Navier-Stokes solver substrate."""

import numpy as np
import pytest

from repro.flow import NavierStokes2D, SolverConfig, cylinder_mask, solver_dataset


@pytest.fixture(scope="module")
def small_config():
    return SolverConfig(nx=48, ny=32, lx=6.0, ly=4.0, nu=5e-3, dt=0.02)


class TestSolverBasics:
    def test_initial_state(self, small_config):
        sim = NavierStokes2D(small_config)
        assert sim.u.shape == (48, 32)
        assert sim.time == 0.0

    def test_divergence_free_after_step(self, small_config):
        sim = NavierStokes2D(small_config)
        sim.run(5)
        assert np.abs(sim.divergence()).max() < 1e-10

    def test_divergence_free_with_obstacle(self, small_config):
        mask = cylinder_mask(small_config, center=(1.5, 2.0), radius=0.4)
        sim = NavierStokes2D(small_config, obstacle=mask)
        sim.run(5)
        assert np.abs(sim.divergence()).max() < 1e-10

    def test_time_advances(self, small_config):
        sim = NavierStokes2D(small_config)
        sim.run(10)
        np.testing.assert_allclose(sim.time, 10 * small_config.dt)
        assert sim.steps_taken == 10

    def test_obstacle_shape_validation(self, small_config):
        with pytest.raises(ValueError):
            NavierStokes2D(small_config, obstacle=np.zeros((3, 3), dtype=bool))

    def test_reynolds(self):
        assert SolverConfig(nu=0.01, u_inf=2.0).reynolds == pytest.approx(200.0)


class TestPhysics:
    def test_uniform_flow_is_steady_without_obstacle(self):
        cfg = SolverConfig(nx=32, ny=32, nu=1e-3, dt=0.02)
        sim = NavierStokes2D(cfg)
        sim.v[:] = 0.0  # remove the seed perturbation
        sim.run(20)
        np.testing.assert_allclose(sim.u, cfg.u_inf, atol=1e-8)
        np.testing.assert_allclose(sim.v, 0.0, atol=1e-8)

    def test_energy_bounded(self, small_config):
        mask = cylinder_mask(small_config, center=(1.5, 2.0), radius=0.4)
        sim = NavierStokes2D(small_config, obstacle=mask)
        sim.run(100)
        # Energy stays of order the free-stream energy; no blow-up.
        assert sim.kinetic_energy() < 5.0 * 0.5 * small_config.u_inf**2

    def test_obstacle_slows_interior_flow(self, small_config):
        mask = cylinder_mask(small_config, center=(1.5, 2.0), radius=0.5)
        sim = NavierStokes2D(small_config, obstacle=mask)
        sim.run(80)
        interior_speed = np.hypot(sim.u[mask], sim.v[mask]).mean()
        free_speed = np.hypot(sim.u[~mask], sim.v[~mask]).mean()
        assert interior_speed < 0.35 * free_speed

    def test_wake_forms_behind_obstacle(self, small_config):
        mask = cylinder_mask(small_config, center=(1.5, 2.0), radius=0.5)
        sim = NavierStokes2D(small_config, obstacle=mask)
        sim.run(120)
        # Mean streamwise velocity deficit downstream of the body.
        jmid = small_config.ny // 2
        i_wake = int(2.5 / small_config.dx)
        assert sim.u[i_wake, jmid] < 0.9 * small_config.u_inf

    def test_vorticity_generated_by_body(self, small_config):
        mask = cylinder_mask(small_config, center=(1.5, 2.0), radius=0.5)
        sim = NavierStokes2D(small_config, obstacle=mask)
        sim.run(80)
        assert np.abs(sim.vorticity()).max() > 1.0

    def test_velocity_field_shape(self, small_config):
        sim = NavierStokes2D(small_config)
        vf = sim.velocity_field()
        assert vf.shape == (48, 32, 2)
        np.testing.assert_allclose(vf[..., 0], sim.u)


class TestSolverDataset:
    def test_extrusion_shape(self):
        cfg = SolverConfig(nx=24, ny=16, lx=3.0, ly=2.0)
        ds = solver_dataset(cfg, n_timesteps=3, sample_every=2, nk=4)
        assert ds.velocity(0).shape == (24, 16, 4, 3)
        assert ds.n_timesteps == 3
        np.testing.assert_allclose(ds.dt, cfg.dt * 2)

    def test_planes_identical_and_w_zero(self):
        cfg = SolverConfig(nx=24, ny=16, lx=3.0, ly=2.0)
        ds = solver_dataset(cfg, n_timesteps=2, sample_every=2, nk=3)
        v = ds.velocity(1)
        np.testing.assert_allclose(v[..., 0, :], v[..., 2, :])
        np.testing.assert_allclose(v[..., 2], 0.0)

    def test_timesteps_evolve(self):
        cfg = SolverConfig(nx=24, ny=16, lx=3.0, ly=2.0)
        mask = cylinder_mask(cfg, center=(0.8, 1.0), radius=0.3)
        ds = solver_dataset(cfg, obstacle=mask, n_timesteps=2, sample_every=5)
        assert not np.allclose(ds.velocity(0), ds.velocity(1))

    def test_default_config(self):
        ds = solver_dataset(n_timesteps=1, sample_every=1, nk=2)
        assert ds.velocity(0).shape[:2] == (128, 64)
