"""Tests for the shared Environment: rakes, users, FCFS locking."""

import numpy as np
import pytest

from repro.core import Environment
from repro.tracers import GrabPoint, Rake


@pytest.fixture()
def env():
    return Environment(n_timesteps=10)


@pytest.fixture()
def env_with_rake(env):
    rake = Rake([0, 0, 0], [2, 0, 0], n_seeds=5)
    rake_id = env.add_rake(rake)
    return env, rake_id


class TestUsers:
    def test_add_users_unique_ids(self, env):
        a = env.add_user("alice")
        b = env.add_user("bob")
        assert a.client_id != b.client_id
        assert env.users[a.client_id].name == "alice"

    def test_remove_user_releases_locks(self, env_with_rake):
        env, rake_id = env_with_rake
        user = env.add_user()
        assert env.try_grab(user.client_id, [0, 0, 0])
        env.remove_user(user.client_id)
        assert env.rake_owner(rake_id) is None

    def test_remove_unknown_user(self, env):
        with pytest.raises(KeyError):
            env.remove_user(99)

    def test_version_bumps_on_mutation(self, env):
        v0 = env.version
        env.add_user()
        assert env.version > v0


class TestRakes:
    def test_add_assigns_id(self, env):
        rid = env.add_rake(Rake([0, 0, 0], [1, 0, 0]))
        assert env.rakes[rid].rake_id == rid

    def test_remove_held_rake_refused(self, env_with_rake):
        env, rake_id = env_with_rake
        user = env.add_user()
        env.try_grab(user.client_id, [0, 0, 0])
        with pytest.raises(PermissionError):
            env.remove_rake(rake_id)

    def test_remove_unknown(self, env):
        with pytest.raises(KeyError):
            env.remove_rake(5)


class TestFCFSLocking:
    def test_first_come_first_served(self, env_with_rake):
        """Section 5.1: the first grabber wins; the second is locked out."""
        env, rake_id = env_with_rake
        alice = env.add_user("alice")
        bob = env.add_user("bob")
        assert env.try_grab(alice.client_id, [0, 0, 0])
        assert not env.try_grab(bob.client_id, [0, 0, 0])
        assert env.rake_owner(rake_id) == alice.client_id

    def test_release_lets_second_user_in(self, env_with_rake):
        env, rake_id = env_with_rake
        alice = env.add_user()
        bob = env.add_user()
        env.try_grab(alice.client_id, [0, 0, 0])
        env.release(alice.client_id)
        assert env.try_grab(bob.client_id, [0, 0, 0])
        assert env.rake_owner(rake_id) == bob.client_id

    def test_other_rakes_unaffected_by_lock(self, env_with_rake):
        """'Other rakes are unaffected by this locking.'"""
        env, _ = env_with_rake
        other_id = env.add_rake(Rake([10, 0, 0], [12, 0, 0]))
        alice = env.add_user()
        bob = env.add_user()
        env.try_grab(alice.client_id, [0, 0, 0])
        assert env.try_grab(bob.client_id, [10, 0, 0])
        assert env.rake_owner(other_id) == bob.client_id

    def test_grab_out_of_reach_fails(self, env_with_rake):
        env, _ = env_with_rake
        user = env.add_user()
        assert not env.try_grab(user.client_id, [50, 50, 50])

    def test_grab_while_holding_is_idempotent(self, env_with_rake):
        env, rake_id = env_with_rake
        user = env.add_user()
        assert env.try_grab(user.client_id, [0, 0, 0])
        assert env.try_grab(user.client_id, [2, 0, 0])
        # Still holding the original grab point.
        assert env.users[user.client_id].holding[0] == rake_id

    def test_release_without_holding_is_noop(self, env):
        user = env.add_user()
        env.release(user.client_id)  # no exception


class TestGestureDrivenInteraction:
    def test_fist_grabs_and_drags(self, env_with_rake):
        env, rake_id = env_with_rake
        user = env.add_user()
        # Fist near end A grabs it; moving the hand drags that end.
        env.update_user(user.client_id, [0, 0, 1], [0.1, 0, 0], "fist")
        assert env.users[user.client_id].holding is not None
        env.update_user(user.client_id, [0, 0, 1], [0, 3, 0], "fist")
        np.testing.assert_allclose(env.rakes[rake_id].end_a, [0, 3, 0])
        np.testing.assert_allclose(env.rakes[rake_id].end_b, [2, 0, 0])

    def test_center_grab_translates(self, env_with_rake):
        env, rake_id = env_with_rake
        user = env.add_user()
        env.update_user(user.client_id, [0, 0, 1], [1.0, 0, 0], "fist")
        holding = env.users[user.client_id].holding
        assert holding[1] is GrabPoint.CENTER
        env.update_user(user.client_id, [0, 0, 1], [5.0, 1.0, 0], "fist")
        np.testing.assert_allclose(env.rakes[rake_id].center, [5, 1, 0])
        assert env.rakes[rake_id].length == pytest.approx(2.0)

    def test_open_releases(self, env_with_rake):
        env, rake_id = env_with_rake
        user = env.add_user()
        env.update_user(user.client_id, [0, 0, 1], [0, 0, 0], "fist")
        env.update_user(user.client_id, [0, 0, 1], [0, 0, 0], "open")
        assert env.users[user.client_id].holding is None
        assert env.rake_owner(rake_id) is None

    def test_point_gesture_changes_nothing(self, env_with_rake):
        env, rake_id = env_with_rake
        user = env.add_user()
        v = env.version
        env.update_user(user.client_id, [0, 0, 1], [0, 0, 0], "point")
        assert env.users[user.client_id].holding is None
        assert env.rakes[rake_id].length == pytest.approx(2.0)

    def test_locked_out_user_cannot_drag(self, env_with_rake):
        """The losing grabber's fist does not move the contested rake."""
        env, rake_id = env_with_rake
        alice = env.add_user()
        bob = env.add_user()
        env.update_user(alice.client_id, [0, 0, 1], [0, 0, 0], "fist")
        end_a_before = env.rakes[rake_id].end_a.copy()
        env.update_user(bob.client_id, [0, 0, 1], [2.0, 0, 0], "fist")
        env.update_user(bob.client_id, [0, 0, 1], [9.0, 9, 9], "fist")
        # Bob holds nothing; the rake's B end is where it was.
        np.testing.assert_allclose(env.rakes[rake_id].end_b, [2, 0, 0])
        np.testing.assert_allclose(env.rakes[rake_id].end_a, end_a_before)


class TestSnapshot:
    def test_snapshot_wire_safe(self, env_with_rake):
        import json

        env, rake_id = env_with_rake
        user = env.add_user("carol")
        env.try_grab(user.client_id, [0, 0, 0])
        snap = env.snapshot(wall=0.5)
        assert snap["rakes"][str(rake_id)]["owner"] == user.client_id
        assert str(user.client_id) in snap["users"]
        assert snap["clock"]["n_timesteps"] == 10
        # Everything except numpy arrays must be JSON-safe; arrays are
        # dlib-wire-safe.  Spot check by flattening.
        def check(v):
            if isinstance(v, dict):
                for x in v.values():
                    check(x)
            elif isinstance(v, (list, tuple)):
                for x in v:
                    check(x)
            elif v is not None and not isinstance(
                v, (bool, int, float, str, np.ndarray)
            ):
                raise AssertionError(f"non-wire value {type(v)}")

        check(snap)

    def test_grab_radius_validation(self):
        with pytest.raises(ValueError):
            Environment(5, grab_radius=0)
