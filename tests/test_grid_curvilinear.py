"""Tests for CurvilinearGrid, grid factories, Jacobians, and point search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import (
    CurvilinearGrid,
    GridLocator,
    cartesian_grid,
    cylindrical_grid,
    grid_jacobian,
    physical_to_grid_velocity,
)
from repro.grid.jacobian import jacobian_at


class TestCurvilinearGrid:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CurvilinearGrid(np.zeros((3, 3, 3)))
        with pytest.raises(ValueError):
            CurvilinearGrid(np.zeros((1, 3, 3, 3)))

    def test_n_points_and_bytes_match_paper_table2(self):
        # Paper Table 2, row 1: tapered cylinder, 131,072 points ->
        # 1,572,864 bytes per timestep.
        g = cartesian_grid((64, 64, 32))
        assert g.n_points == 131072
        assert g.timestep_nbytes == 1572864

    def test_to_physical_on_cartesian_is_affine(self):
        g = cartesian_grid((5, 5, 5), lo=(0, 0, 0), hi=(4, 8, 12))
        pts = np.array([[1.0, 1.0, 1.0], [2.5, 0.5, 3.0]])
        phys = g.to_physical(pts)
        np.testing.assert_allclose(phys, pts * np.array([1.0, 2.0, 3.0]))

    def test_bounding_box(self):
        g = cartesian_grid((3, 3, 3), lo=(-1, -2, -3), hi=(1, 2, 3))
        lo, hi = g.bounding_box()
        np.testing.assert_allclose(lo, [-1, -2, -3])
        np.testing.assert_allclose(hi, [1, 2, 3])

    def test_contains(self):
        g = cartesian_grid((3, 3, 3))
        assert g.contains(np.array([1.0, 1.0, 1.0]))
        assert not g.contains(np.array([2.5, 1.0, 1.0]))

    def test_cell_corners_ordering(self):
        g = cartesian_grid((3, 3, 3), hi=(2, 2, 2))
        corners = g.cell_corners(np.array([0, 0, 0]))
        assert corners.shape == (8, 3)
        np.testing.assert_allclose(corners[0], [0, 0, 0])
        np.testing.assert_allclose(corners[1], [0, 0, 1])  # k-offset is bit 0
        np.testing.assert_allclose(corners[4], [1, 0, 0])  # i-offset is bit 2


class TestCylindricalGrid:
    def test_taper_shrinks_body(self):
        g = cylindrical_grid((4, 8, 5), r_inner=1.0, r_outer=5.0, taper=0.5)
        # Innermost ring (i=0) at bottom (k=0) has radius 1, at top 0.5.
        r_bottom = np.linalg.norm(g.xyz[0, 0, 0, :2])
        r_top = np.linalg.norm(g.xyz[0, 0, -1, :2])
        np.testing.assert_allclose(r_bottom, 1.0)
        np.testing.assert_allclose(r_top, 0.5)

    def test_outer_radius(self):
        g = cylindrical_grid((4, 8, 5), r_inner=1.0, r_outer=5.0)
        r = np.linalg.norm(g.xyz[-1, :, :, :2], axis=-1)
        np.testing.assert_allclose(r, 5.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            cylindrical_grid((4, 8, 5), taper=1.0)
        with pytest.raises(ValueError):
            cylindrical_grid((4, 8, 5), r_inner=2.0, r_outer=1.0)

    def test_radial_clustering_near_body(self):
        g = cylindrical_grid((16, 8, 4), r_inner=1.0, r_outer=9.0, radial_stretch=3.0)
        r = np.linalg.norm(g.xyz[:, 0, 0, :2], axis=-1)
        dr = np.diff(r)
        assert dr[0] < dr[-1]  # finer spacing near the body
        assert np.all(dr > 0)


class TestJacobian:
    def test_cartesian_jacobian_is_diagonal(self):
        g = cartesian_grid((4, 4, 4), hi=(3.0, 6.0, 9.0))
        jac = grid_jacobian(g.xyz)
        expected = np.diag([1.0, 2.0, 3.0])
        np.testing.assert_allclose(jac, np.broadcast_to(expected, jac.shape))

    def test_velocity_transform_cartesian(self):
        g = cartesian_grid((4, 4, 4), hi=(3.0, 6.0, 9.0))
        v = np.ones(g.shape + (3,))
        vg = physical_to_grid_velocity(g.xyz, v)
        np.testing.assert_allclose(vg, np.broadcast_to([1.0, 0.5, 1 / 3], vg.shape))

    def test_velocity_transform_reuses_jacobian(self):
        g = cartesian_grid((4, 4, 4))
        jac = grid_jacobian(g.xyz)
        v = np.random.default_rng(1).normal(size=g.shape + (3,))
        a = physical_to_grid_velocity(g.xyz, v)
        b = physical_to_grid_velocity(g.xyz, v, jac=jac)
        np.testing.assert_allclose(a, b)

    def test_shape_mismatch(self):
        g = cartesian_grid((4, 4, 4))
        with pytest.raises(ValueError):
            physical_to_grid_velocity(g.xyz, np.zeros((3, 3, 3, 3)))

    def test_jacobian_at_matches_finite_difference(self):
        g = cylindrical_grid((6, 9, 5))
        pt = np.array([[2.3, 4.1, 1.7]])
        jac = jacobian_at(g.xyz, pt)[0]
        eps = 1e-6
        for b in range(3):
            dp = np.zeros(3)
            dp[b] = eps
            fd = (g.to_physical(pt + dp) - g.to_physical(pt - dp))[0] / (2 * eps)
            np.testing.assert_allclose(jac[:, b], fd, atol=1e-5)

    def test_jacobian_at_single_point_shape(self):
        g = cartesian_grid((3, 3, 3))
        assert jacobian_at(g.xyz, np.array([0.5, 0.5, 0.5])).shape == (3, 3)


class TestGridLocator:
    def test_roundtrip_cartesian(self):
        g = cartesian_grid((5, 5, 5), hi=(4, 4, 4))
        loc = GridLocator(g)
        rng = np.random.default_rng(3)
        coords = rng.uniform(0, 4, size=(20, 3))
        phys = g.to_physical(coords)
        found_coords, found = loc.locate(phys)
        assert found.all()
        np.testing.assert_allclose(found_coords, coords, atol=1e-6)

    def test_roundtrip_cylindrical(self):
        g = cylindrical_grid((8, 17, 6), r_inner=0.5, r_outer=6.0, taper=0.3)
        loc = GridLocator(g)
        rng = np.random.default_rng(4)
        ni, nj, nk = g.shape
        coords = rng.uniform([0.2, 0.2, 0.2], [ni - 1.2, nj - 1.2, nk - 1.2], (30, 3))
        phys = g.to_physical(coords)
        out, found = loc.locate(phys)
        assert found.all()
        np.testing.assert_allclose(g.to_physical(out), phys, atol=1e-6)

    def test_outside_not_found(self):
        g = cartesian_grid((4, 4, 4), hi=(3, 3, 3))
        loc = GridLocator(g)
        _, found = loc.locate(np.array([[10.0, 10.0, 10.0]]))
        assert not found[0]

    def test_single_point_api(self):
        g = cartesian_grid((4, 4, 4), hi=(3, 3, 3))
        loc = GridLocator(g)
        coords, found = loc.locate(np.array([1.5, 1.5, 1.5]))
        assert found is True or found is np.True_ or found
        np.testing.assert_allclose(coords, [1.5, 1.5, 1.5], atol=1e-8)

    def test_warm_start_guess(self):
        g = cartesian_grid((5, 5, 5), hi=(4, 4, 4))
        loc = GridLocator(g)
        target = np.array([[2.2, 2.2, 2.2]])
        coords, found = loc.locate(target, guess=np.array([[2.0, 2.0, 2.0]]))
        assert found.all()
        np.testing.assert_allclose(coords, target, atol=1e-8)

    def test_bad_shapes(self):
        g = cartesian_grid((4, 4, 4))
        loc = GridLocator(g)
        with pytest.raises(ValueError):
            loc.locate(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            loc.locate(np.zeros((2, 3)), guess=np.zeros((3, 3)))

    @given(
        st.lists(
            st.tuples(
                st.floats(0.1, 3.9, allow_nan=False),
                st.floats(0.1, 3.9, allow_nan=False),
                st.floats(0.1, 3.9, allow_nan=False),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_locate_inverts_to_physical(self, pts):
        """Property: locate(to_physical(c)) == c on a warped grid."""
        # Smoothly warped grid (non-trivial but invertible).
        base = cartesian_grid((5, 5, 5), hi=(4, 4, 4)).xyz.copy()
        base[..., 0] += 0.1 * np.sin(base[..., 1])
        base[..., 2] += 0.1 * np.cos(base[..., 0])
        g = CurvilinearGrid(base)
        loc = GridLocator(g)
        coords = np.array(pts)
        phys = g.to_physical(coords)
        out, found = loc.locate(phys)
        assert found.all()
        np.testing.assert_allclose(g.to_physical(out), phys, atol=1e-6)
