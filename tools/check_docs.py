#!/usr/bin/env python
"""Docs CI: check relative markdown links and run fenced doctest blocks.

Two classes of documentation rot, both caught mechanically:

* **Dead relative links** — every ``[text](target)`` whose target is not
  an URL or a pure anchor must resolve to a file (or directory) in the
  repository, relative to the document that links it.
* **Stale runnable examples** — a fenced code block opened with
  ```` ```python doctest ```` is executed as a doctest session against
  the real package.  Prose examples (plain ```` ```python ````) are not
  executed; opt a block in only when it is deterministic.

Usage::

    PYTHONPATH=src python tools/check_docs.py           # whole repo
    PYTHONPATH=src python tools/check_docs.py docs/network.md

Exits non-zero on any failure.  ``tests/test_docs.py`` wraps this for
the test suite, and the ``docs`` CI job runs it directly.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Documents checked when no arguments are given.
DEFAULT_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

#: ``[text](target)`` — excluding images' leading ``!`` is unnecessary:
#: image targets must resolve too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: A fenced block opened with ```python doctest (any trailing ws).
_DOCTEST_FENCE = re.compile(
    r"^```python doctest\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def _rel(path: Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def doc_files(args: list[str]) -> list[Path]:
    if args:
        return [Path(a).resolve() for a in args]
    files = [REPO / name for name in DEFAULT_DOCS if (REPO / name).exists()]
    files += sorted((REPO / "docs").glob("*.md"))
    return files


def strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks so code snippets can't fake links."""
    return re.sub(r"^```.*?^```\s*$", "", text, flags=re.MULTILINE | re.DOTALL)


def check_links(path: Path, text: str) -> list[str]:
    errors = []
    for target in _LINK.findall(strip_code_blocks(text)):
        if target.startswith(_SKIP_PREFIXES):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            errors.append(f"{_rel(path)}: dead link -> {target}")
    return errors


def run_doctests(path: Path, text: str) -> tuple[int, list[str]]:
    """Run every opted-in fenced block; returns (n_blocks, errors)."""
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
    errors: list[str] = []
    blocks = _DOCTEST_FENCE.findall(text)
    for i, block in enumerate(blocks):
        name = f"{path.name}[block {i}]"
        test = parser.get_doctest(block, {}, name, str(path), 0)
        out: list[str] = []
        runner.run(test, out=out.append)
        if runner.failures:
            errors.append(f"{_rel(path)}: doctest block {i} failed:\n"
                          + "".join(out))
            runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
    return len(blocks), errors


def main(argv: list[str] | None = None) -> int:
    files = doc_files(list(argv if argv is not None else sys.argv[1:]))
    errors: list[str] = []
    n_links = n_blocks = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        link_errors = check_links(path, text)
        n_links += len(_LINK.findall(strip_code_blocks(text)))
        errors += link_errors
        blocks, dt_errors = run_doctests(path, text)
        n_blocks += blocks
        errors += dt_errors
    for e in errors:
        print(f"FAIL {e}", file=sys.stderr)
    print(
        f"check_docs: {len(files)} files, {n_links} links, "
        f"{n_blocks} doctest blocks, {len(errors)} failures"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
